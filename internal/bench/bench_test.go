package bench

import (
	"strings"
	"testing"
	"time"
)

// The harness tests run scaled-down versions of each figure and check
// the paper's qualitative claims — who wins, and in which direction the
// curves move — not absolute numbers.

const testN = 4000 // scaled-down dictionary for test speed

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(testN, 1<<20, []int{128, 256, 1024, 4096}, []int{1, 8, 64})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: for all bucket sizes, the greatest performance gains come
	// from increasing the fill factor away from 1.
	for _, bs := range res.Bsizes {
		atFF1 := res.point(bs, 1)
		atFF8 := res.point(bs, 8)
		if atFF1 == nil || atFF8 == nil {
			t.Fatalf("missing points for bsize %d", bs)
		}
		if atFF8.Total.Elapsed > atFF1.Total.Elapsed {
			t.Errorf("bsize %d: ffactor 8 slower than ffactor 1 (%v > %v)",
				bs, atFF8.Total.Elapsed, atFF1.Total.Elapsed)
		}
	}
	// Paper: large pages at fill factor 1 are the catastrophic corner
	// (most pages, most buffer-manager churn).
	worst := res.point(4096, 1)
	good := res.point(256, 8)
	if worst.Total.Sys < good.Total.Sys {
		t.Errorf("4096/1 system time %v < 256/8 %v; expected the corner to be worst",
			worst.Total.Sys, good.Total.Sys)
	}
	if s := res.String(); !strings.Contains(s, "5a: System time") {
		t.Error("String() missing panel headers")
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(testN, []int{4, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: once the fill factor is sufficiently high for the page size
	// (8), growing the table dynamically does little to degrade
	// performance — and never *improves* it dramatically.
	for _, p := range res.Points {
		if p.Ffactor < 8 {
			continue
		}
		if p.Known.Elapsed == 0 {
			continue
		}
		penalty := float64(p.Grown.Elapsed-p.Known.Elapsed) / float64(p.Known.Elapsed)
		if penalty > 1.0 {
			t.Errorf("ffactor %d: dynamic growth penalty %.0f%%, paper expects it small",
				p.Ffactor, 100*penalty)
		}
	}
	if s := res.String(); !strings.Contains(s, "known size") {
		t.Error("String() malformed")
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(testN, []int{0, 64 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	small, large := res.Points[0], res.Points[len(res.Points)-1]
	// Paper: system time is inversely proportional to the pool size...
	if small.T.Sys <= large.T.Sys {
		t.Errorf("sys time did not fall with pool size: %v (small) vs %v (1MB)",
			small.T.Sys, large.T.Sys)
	}
	// ...and with 1 MB of buffer space the package performed no I/O for
	// the data set. The durable dirty mark (one header write before the
	// first mutation) is a constant durability cost on top of the paper's
	// model, so allow exactly those header pages and nothing more.
	hdrWrites := int64((276 + 255) / 256) // headerSize / bsize, rounded up
	if large.IOOps > hdrWrites {
		t.Errorf("1MB pool performed %d page I/Os, paper expects none beyond the %d-page dirty mark",
			large.IOOps, hdrWrites)
	}
	// User time is virtually insensitive to the pool size (allow wide
	// slack: wall-clock noise).
	if small.T.User > 20*large.T.User+50*time.Millisecond {
		t.Errorf("user time blew up with a small pool: %v vs %v", small.T.User, large.T.User)
	}
}

func TestFig8DictShape(t *testing.T) {
	res, err := Fig8Dict(testN)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Fig8Row{}
	for _, r := range res.DiskRows {
		rows[r.Test] = r
	}
	// Paper: the read and verify tests benefit from the caching of
	// buckets in the new package to improve performance by over 80%.
	for _, test := range []string{"READ", "VERIFY"} {
		r := rows[test]
		if imp := r.Improvement(); imp < 50 {
			t.Errorf("%s: improvement %.0f%%, paper reports >80%%", test, imp)
		}
	}
	// Paper: when both packages must return the data, the new package
	// excels (75% elapsed improvement).
	if imp := rows["SEQUENTIAL (with data retrieval)"].Improvement(); imp < 30 {
		t.Errorf("SEQUENTIAL+data: improvement %.0f%%, paper reports 75%%", imp)
	}
	// Paper: create wins too (9% elapsed on the dictionary).
	if imp := rows["CREATE"].Improvement(); imp < 0 {
		t.Errorf("CREATE: hash slower than ndbm by %.0f%%", -imp)
	}
	// Memory-resident: the structural claims hold — the hash package
	// bounds its memory and pays a system-time (swap) penalty that pure
	// in-memory hsearch does not, and it stays within a small factor of
	// hsearch overall. (The paper's >50% elapsed win came from SysV
	// hsearch's per-probe and allocation costs on 1990 hardware, which a
	// clean Go port does not reproduce; see EXPERIMENTS.md.)
	mem := res.MemRows[0]
	if mem.Hash.Sys == 0 {
		t.Error("CREATE/READ: hash paid no swap penalty; the 64KB pool bound is not engaging")
	}
	if mem.Old.Sys != 0 {
		t.Error("CREATE/READ: hsearch charged system time but performs no I/O")
	}
	// The factor is generous because race instrumentation inflates the
	// paged code path far more than hsearch's flat probing.
	if mem.Hash.Elapsed > 15*mem.Old.Elapsed+10*time.Millisecond {
		t.Errorf("CREATE/READ vs hsearch: hash %v vs %v — worse than the documented deviation",
			mem.Hash.Elapsed, mem.Old.Elapsed)
	}
	if s := res.String(); !strings.Contains(s, "ndbm") || !strings.Contains(s, "hsearch") {
		t.Error("String() malformed")
	}
}

func TestFig8PasswdShape(t *testing.T) {
	res, err := Fig8Passwd(0) // the full ~300-account file is tiny
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "for the small data base, we see that differences in both
	// user and system time contribute to the superior performance of the
	// new package" on CREATE; the rest "ran in under a second" and is
	// uninteresting. Require only: no test catastrophically lost.
	for _, r := range res.DiskRows {
		if r.Test == "SEQUENTIAL" {
			continue // keys-only scan can favour ndbm, as in the paper
		}
		if r.Hash.Elapsed > 3*r.Old.Elapsed+10*time.Millisecond {
			t.Errorf("%s: hash %v vs ndbm %v", r.Test, r.Hash.Elapsed, r.Old.Elapsed)
		}
	}
}

func TestAblateSplitPolicy(t *testing.T) {
	res, err := AblateSplitPolicy(testN)
	if err != nil {
		t.Fatal(err)
	}
	// With the fill factor above the page capacity, overflow pressure is
	// constant: the hybrid policy must split more and leave far fewer
	// overflow pages (shorter chains) than controlled-only splitting.
	if res.Hybrid.OvflPages >= res.CtlOnl.OvflPages {
		t.Errorf("hybrid left %d overflow pages, controlled-only %d — uncontrolled splits had no effect",
			res.Hybrid.OvflPages, res.CtlOnl.OvflPages)
	}
	if res.Hybrid.Expansions <= res.CtlOnl.Expansions {
		t.Errorf("hybrid split %d times, controlled-only %d — hybrid must split more under overflow pressure",
			res.Hybrid.Expansions, res.CtlOnl.Expansions)
	}
	if s := res.String(); !strings.Contains(s, "hybrid") {
		t.Error("String() malformed")
	}
}

func TestAblateHashFuncs(t *testing.T) {
	rs, err := AblateHashFuncs(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 {
		t.Fatalf("profiled %d functions", len(rs))
	}
	for _, r := range rs {
		if r.NsPerCall <= 0 || r.NsPerCall > 100000 {
			t.Errorf("%s: %f ns/call implausible", r.Name, r.NsPerCall)
		}
		// 2000 keys into 65536 cells: a healthy function collides rarely.
		if r.Name != "division" && r.Collisions > 400 {
			t.Errorf("%s: %d collisions of 2000 keys at 16 bits", r.Name, r.Collisions)
		}
	}
	if s := FormatHashFuncs(rs, 2000); !strings.Contains(s, "ns/call") {
		t.Error("FormatHashFuncs malformed")
	}
}

func TestMethodsComparison(t *testing.T) {
	res, err := Methods(testN)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var hash, bt MethodsRow
	for _, r := range res.Rows {
		switch r.Method {
		case "hash":
			hash = r
		case "btree":
			bt = r
		}
	}
	// The classic tradeoff: hashing touches fewer pages per random
	// lookup than the log-depth btree (with a 1 MB pool both serve
	// reads from memory, so compare via read ops during create+read).
	if hash.Read.Elapsed > bt.Read.Elapsed+bt.Read.Elapsed/2 {
		t.Errorf("hash reads (%v) much slower than btree (%v)", hash.Read.Elapsed, bt.Read.Elapsed)
	}
	if hash.Pages == 0 || bt.Pages == 0 {
		t.Error("page counts missing")
	}
	if s := res.String(); !strings.Contains(s, "btree") {
		t.Error("String() malformed")
	}
}

func TestTimingHelpers(t *testing.T) {
	a := Timing{User: time.Second, Sys: 2 * time.Second, Elapsed: 3 * time.Second, Reads: 5, Writes: 7}
	b := Timing{User: time.Second, Sys: time.Second, Elapsed: 2 * time.Second, Reads: 1, Writes: 1}
	sum := a.Add(b)
	if sum.User != 2*time.Second || sum.Sys != 3*time.Second || sum.Reads != 6 || sum.Writes != 8 {
		t.Fatalf("Add = %+v", sum)
	}
	if got := Seconds(1500 * time.Millisecond); got != "1.5" {
		t.Fatalf("Seconds = %q", got)
	}
}

func TestFig7String(t *testing.T) {
	res, err := Fig7(500, []int{1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); !strings.Contains(s, "Figure 7") || !strings.Contains(s, "page I/Os") {
		t.Fatalf("String = %q", s)
	}
}

func TestFig5DefaultsAndMissingPoint(t *testing.T) {
	res, err := Fig5(300, 0, []int{128}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BufferBytes != 1<<20 {
		t.Fatalf("default buffer = %d", res.BufferBytes)
	}
	if p := res.point(9999, 1); p != nil {
		t.Fatal("found a point that was never measured")
	}
	// String renders a dash for missing cells.
	res.Bsizes = append(res.Bsizes, 9999)
	if s := res.String(); !strings.Contains(s, "-") {
		t.Fatalf("missing cell not rendered: %q", s)
	}
	empty := &Fig5Result{}
	if bs, ff := empty.Best(); bs != 0 || ff != 0 {
		t.Fatalf("Best on empty = %d/%d", bs, ff)
	}
}

func TestImprovementMetric(t *testing.T) {
	if got := Improvement(100, 50); got != 50 {
		t.Fatalf("Improvement(100,50) = %f", got)
	}
	if got := Improvement(0, 50); got != 0 {
		t.Fatalf("Improvement(0,50) = %f", got)
	}
	if got := Improvement(50, 100); got != -100 {
		t.Fatalf("Improvement(50,100) = %f", got)
	}
}

package bench

import (
	"fmt"
	"strings"

	"unixhash/internal/dataset"
)

// Figure 5 (a: system time, b: elapsed time, c: user time): the
// dictionary data set entered into and retrieved from a new table, with
// the ultimate table size known in advance and 1 MB of buffer space,
// sweeping the page size and the fill factor. The paper's conclusion:
// the greatest gains come from raising the fill factor until
// (average_pair_length + 4) * ffactor >= bsize (equation 1); the
// tradeoff works out most favourably at bsize 256, ffactor 8.

// Fig5Point is one (bsize, ffactor) cell.
type Fig5Point struct {
	Bsize   int
	Ffactor int
	Create  Timing
	Read    Timing
	Total   Timing
}

// Fig5Result holds the full sweep.
type Fig5Result struct {
	N           int
	BufferBytes int
	Bsizes      []int
	Ffactors    []int
	Points      []Fig5Point
}

// DefaultFig5Bsizes are the page sizes of the paper's Figure 5 curves.
var DefaultFig5Bsizes = []int{128, 256, 512, 1024, 4096, 8192}

// DefaultFig5Ffactors are the sweep's fill factors (1..128).
var DefaultFig5Ffactors = []int{1, 2, 4, 8, 16, 32, 64, 128}

// Fig5 runs the sweep. n <= 0 selects the paper's full dictionary.
func Fig5(n, bufBytes int, bsizes, ffactors []int) (*Fig5Result, error) {
	pairs := dataset.Dictionary(n)
	if bufBytes <= 0 {
		bufBytes = 1 << 20
	}
	if len(bsizes) == 0 {
		bsizes = DefaultFig5Bsizes
	}
	if len(ffactors) == 0 {
		ffactors = DefaultFig5Ffactors
	}
	res := &Fig5Result{N: len(pairs), BufferBytes: bufBytes, Bsizes: bsizes, Ffactors: ffactors}
	for _, bs := range bsizes {
		for _, ff := range ffactors {
			r, err := newHashRun(HashParams{Bsize: bs, Ffactor: ff, CacheSize: bufBytes, Nelem: len(pairs)})
			if err != nil {
				return nil, err
			}
			ct, err := r.createAll(pairs)
			if err != nil {
				return nil, fmt.Errorf("fig5 bsize=%d ff=%d create: %w", bs, ff, err)
			}
			rt, err := r.readAll(pairs)
			if err != nil {
				return nil, fmt.Errorf("fig5 bsize=%d ff=%d read: %w", bs, ff, err)
			}
			if err := r.close(); err != nil {
				return nil, err
			}
			res.Points = append(res.Points, Fig5Point{
				Bsize: bs, Ffactor: ff, Create: ct, Read: rt, Total: ct.Add(rt),
			})
		}
	}
	return res, nil
}

func (r *Fig5Result) point(bs, ff int) *Fig5Point {
	for i := range r.Points {
		if r.Points[i].Bsize == bs && r.Points[i].Ffactor == ff {
			return &r.Points[i]
		}
	}
	return nil
}

// Best returns the (bsize, ffactor) with the lowest total elapsed time —
// the paper's "tradeoff works out most favorably" cell.
func (r *Fig5Result) Best() (bsize, ffactor int) {
	best := -1
	for i, p := range r.Points {
		if best < 0 || p.Total.Elapsed < r.Points[best].Total.Elapsed {
			best = i
		}
	}
	if best < 0 {
		return 0, 0
	}
	return r.Points[best].Bsize, r.Points[best].Ffactor
}

// String renders the three panels as fill-factor × bucket-size tables.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — dictionary data set (%d keys), %d KB buffer, table size known\n",
		r.N, r.BufferBytes/1024)
	panels := []struct {
		name string
		get  func(Fig5Point) float64
	}{
		{"5a: System time (seconds)", func(p Fig5Point) float64 { return p.Total.Sys.Seconds() }},
		{"5b: Elapsed time (seconds)", func(p Fig5Point) float64 { return p.Total.Elapsed.Seconds() }},
		{"5c: User time (seconds)", func(p Fig5Point) float64 { return p.Total.User.Seconds() }},
	}
	for _, panel := range panels {
		fmt.Fprintf(&b, "\n%s\n", panel.name)
		fmt.Fprintf(&b, "%8s", "ffactor")
		for _, bs := range r.Bsizes {
			fmt.Fprintf(&b, "%10d", bs)
		}
		b.WriteByte('\n')
		for _, ff := range r.Ffactors {
			fmt.Fprintf(&b, "%8d", ff)
			for _, bs := range r.Bsizes {
				if p := r.point(bs, ff); p != nil {
					fmt.Fprintf(&b, "%10.2f", panel.get(*p))
				} else {
					fmt.Fprintf(&b, "%10s", "-")
				}
			}
			b.WriteByte('\n')
		}
	}
	bs, ff := r.Best()
	fmt.Fprintf(&b, "\nBest total elapsed: bsize=%d ffactor=%d (paper: 256/8)\n", bs, ff)
	return b.String()
}

package bench

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"unixhash/internal/core"
	"unixhash/internal/dataset"
	"unixhash/internal/pagefile"
	"unixhash/internal/trace"
)

// Serve runs a live mixed workload against a traced, telemetry-serving
// in-memory table: the target the /metrics, /stats, /debug/events and
// /debug/heatmap endpoints are meant to be watched against. The listen
// address (resolved, so addr may be ":0") is printed to out as the
// first line, which is how scripts and the CI smoke test discover the
// port. n <= 0 selects the paper's dictionary; dur <= 0 runs until the
// process is killed.
//
// The workload is deliberately eventful rather than maximally fast:
// four goroutines run a 90% read / 10% write mix over a growing key
// space (splits, overflow traffic), a slice of oversized values keeps
// big-pair chains churning, and a background Sync fires every 100ms so
// the two-phase sync events stream continuously.
func Serve(n int, addr string, dur time.Duration, out io.Writer) error {
	pairs := dataset.Dictionary(n)
	tr := trace.New(1 << 14)
	store := pagefile.NewMem(1024, pagefile.CostModel{})
	t, err := core.Open("", &core.Options{
		Bsize: 1024, Ffactor: 8, CacheSize: 1 << 20,
		Store: store, Trace: tr, TelemetryAddr: addr,
	})
	if err != nil {
		return err
	}
	defer t.Close()
	fmt.Fprintf(out, "telemetry http://%s\n", t.TelemetryAddr())

	for _, p := range pairs {
		if err := t.Put(p.Key, p.Data); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "serving %d keys; workload running", len(pairs))
	if dur > 0 {
		fmt.Fprintf(out, " for %v", dur)
	}
	fmt.Fprintln(out)

	var stop atomic.Bool
	var ops atomic.Int64
	var firstErr atomic.Value
	fail := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, err)
			stop.Store(true)
		}
	}
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			dst := make([]byte, 0, 256)
			big := make([]byte, 4000)
			extra := 0 // keys this worker has added beyond the dictionary
			for !stop.Load() {
				var err error
				switch r := rng.Intn(100); {
				case r < 90: // read
					p := pairs[rng.Intn(len(pairs))]
					if dst, err = t.GetBuf(p.Key, dst); errors.Is(err, core.ErrNotFound) {
						err = nil
					}
				case r < 96: // grow: insert a fresh key
					extra++
					err = t.Put([]byte(fmt.Sprintf("live-%d-%d", seed, extra)), dst[:0])
				case r < 98: // big pair churn
					k := []byte(fmt.Sprintf("big-%d", seed))
					if err = t.Put(k, big); err == nil {
						err = t.Delete(k)
					}
				default: // rewrite an existing pair
					p := pairs[rng.Intn(len(pairs))]
					err = t.Put(p.Key, p.Data)
				}
				fail(err)
				ops.Add(1)
			}
		}(int64(w) + 1)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for !stop.Load() {
			<-tick.C
			fail(t.Sync())
		}
	}()

	if dur > 0 {
		time.Sleep(dur)
		stop.Store(true)
	}
	wg.Wait() // dur <= 0: blocks until the process is killed
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}
	fmt.Fprintf(out, "done: %d ops, %d keys, %d buckets\n",
		ops.Load(), t.Len(), t.Geometry().MaxBucket+1)
	return nil
}

package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("test_ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_keys")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	s := r.Snapshot()
	if s.Counter("test_ops_total") != 5 || s.Gauge("test_keys") != 7 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestRegistryDedupes(t *testing.T) {
	r := New()
	a := r.Counter("dup")
	b := r.Counter("dup")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	if b.Load() != 1 {
		t.Fatal("deduped counters must share state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reregistering a name as a different kind must panic")
		}
	}()
	r.Gauge("dup")
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{time.Millisecond, 10},        // 1024us = 1us<<10
		{time.Second, 20},             // ~1.05s bound at 1us<<20
		{2 * time.Hour, nBuckets - 1}, // overflow bucket
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
		h.Observe(c.d)
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	s := h.Snapshot()
	var n int64
	for _, b := range s.Buckets {
		n += b.Count
	}
	if n != s.Count {
		t.Fatalf("bucket sum %d != count %d", n, s.Count)
	}
	if s.Mean() <= 0 {
		t.Fatalf("mean = %v, want > 0", s.Mean())
	}
}

func TestBucketBoundsAreMonotonic(t *testing.T) {
	prev := time.Duration(0)
	for i := 0; i < nBuckets-1; i++ {
		b := BucketBound(i)
		if b <= prev {
			t.Fatalf("bucket %d bound %v not > %v", i, b, prev)
		}
		prev = b
	}
	if BucketBound(nBuckets-1) != -1 {
		t.Fatal("last bucket must be +Inf")
	}
}

func TestWriteProm(t *testing.T) {
	r := New()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(-2)
	r.GaugeFunc("c", func() int64 { return 42 })
	r.Histogram("lat_seconds").Observe(3 * time.Microsecond)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total 3\n",
		"# TYPE b gauge\nb -2\n",
		"c 42\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="4e-06"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom dump missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentSnapshotMonotonic hammers one registry from writer
// goroutines while readers take snapshots, asserting every counter is
// monotonic across successive snapshots (run under -race).
func TestConcurrentSnapshotMonotonic(t *testing.T) {
	r := New()
	c1 := r.Counter("m1")
	c2 := r.Counter("m2")
	h := r.Histogram("h")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c1.Inc()
					c2.Add(2)
					h.Observe(time.Microsecond)
				}
			}
		}()
	}
	for reader := 0; reader < 2; reader++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last Snapshot
			for i := 0; i < 200; i++ {
				s := r.Snapshot()
				if i > 0 {
					for name, v := range last.Counters {
						if s.Counters[name] < v {
							t.Errorf("counter %s went backwards: %d -> %d", name, v, s.Counters[name])
						}
					}
					if s.Histograms["h"].Count < last.Histograms["h"].Count {
						t.Error("histogram count went backwards")
					}
				}
				last = s
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestCounterAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("hot")
	h := r.Histogram("hot_lat")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		h.Observe(time.Microsecond)
	}); n != 0 {
		t.Fatalf("hot-path metric updates allocate: %v allocs/op", n)
	}
}

// TestMultiRegistration pins the sharded-registry contract: N components
// registering func-backed collectors or histograms under one name must
// aggregate (sum) rather than shadow each other — the property that lets
// every shard of a sharded table publish on one /metrics page.
func TestMultiRegistration(t *testing.T) {
	r := New()

	a, b := int64(3), int64(4)
	r.CounterFunc("multi_reads_total", func() int64 { return a })
	r.CounterFunc("multi_reads_total", func() int64 { return b })
	if got := r.Snapshot().Counter("multi_reads_total"); got != 7 {
		t.Fatalf("summed counterfunc = %d, want 7", got)
	}

	r.GaugeFunc("multi_resident", func() int64 { return 10 })
	r.GaugeFunc("multi_resident", func() int64 { return 5 })
	if got := r.Snapshot().Gauge("multi_resident"); got != 15 {
		t.Fatalf("summed gaugefunc = %d, want 15", got)
	}

	var h1, h2 Histogram
	r.AddHistogram("multi_seconds", &h1)
	r.AddHistogram("multi_seconds", &h2)
	r.AddHistogram("multi_seconds", &h1) // same histogram again: no-op
	h1.Observe(time.Microsecond)
	h1.Observe(3 * time.Microsecond)
	h2.Observe(3 * time.Microsecond)
	hs := r.Snapshot().Histograms["multi_seconds"]
	if hs.Count != 3 || hs.SumNanos != int64(7*time.Microsecond) {
		t.Fatalf("merged histogram = %+v, want count 3 sum 7us", hs)
	}

	var dump strings.Builder
	if err := r.WriteProm(&dump); err != nil {
		t.Fatal(err)
	}
	out := dump.String()
	for _, want := range []string{
		"multi_reads_total 7",
		"multi_resident 15",
		`multi_seconds_bucket{le="+Inf"} 3`,
		"multi_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteProm output missing %q:\n%s", want, out)
		}
	}

	// Registry.Histogram keeps handing out one shared handle even after
	// AddHistogram attached component-owned ones.
	if got := r.Histogram("multi_seconds"); got != &h1 {
		t.Fatal("Histogram must return the first registered histogram")
	}
}

// Package metrics is the hashing package's observability substrate: a
// lightweight, allocation-free registry of atomic counters, gauges and
// latency histograms that every layer (core table, buffer pool, page
// store, recovery) threads its instrumentation through.
//
// The design rules, in priority order:
//
//   - Hot-path updates are one padded atomic add — no locks, no maps, no
//     allocation. Callers resolve a *Counter (or *Gauge, *Histogram) once
//     at open time and keep the pointer.
//   - Reads never block writers: Snapshot and WriteProm load counters
//     atomically without stopping the world, so a scrape observes a
//     near-point-in-time state while operations continue.
//   - Names are stable, Prometheus-style identifiers ("hash_gets_total",
//     "pagefile_sync_seconds"), so the text dump is scrapable as-is.
//
// Registering the same name twice aggregates into one series (the
// expvar semantic): Counter/Gauge/Histogram return the shared handle,
// and func-backed metrics (CounterFunc/GaugeFunc) and AddHistogram
// collect every registration and sum them at read time. That is what
// lets N sharded tables — each registering its own buffer pool, page
// store and log collectors — publish under one registry (one /metrics
// page) without clobbering or double counting each other.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. It is padded to its own
// cache line so counters resolved into adjacent struct fields do not
// false-share under concurrent readers.
type Counter struct {
	v atomic.Int64
	_ [56]byte // pad to 64 bytes: v (8) + 56
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (keys in a table, resident
// buffers). Same padding rationale as Counter.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram buckets: powers of two of microseconds, from 1us up to
// ~8.6s, plus a final overflow bucket. Bucket i counts observations with
// d <= 1us<<i; index nBuckets-1 collects everything larger.
const (
	nBuckets   = 24
	bucketUnit = time.Microsecond
)

// Histogram is a fixed-bucket latency histogram. Observe is one atomic
// add on the bucket plus two on count/sum; buckets share cache lines
// (latency observations sit on I/O paths, where nanoseconds of false
// sharing are noise next to the operation being timed).
type Histogram struct {
	buckets [nBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	if d <= bucketUnit {
		return 0
	}
	// Index of the highest set bit of ceil(d / 1us).
	us := uint64((d + bucketUnit - 1) / bucketUnit)
	i := bits.Len64(us - 1) // smallest i with 1<<i >= us
	if i >= nBuckets {
		return nBuckets - 1
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i; the last
// bucket's bound is reported as -1 (+Inf).
func BucketBound(i int) time.Duration {
	if i >= nBuckets-1 {
		return -1
	}
	return bucketUnit << i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Snapshot copies the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, BucketCount{Bound: BucketBound(i), Count: n})
	}
	return s
}

// BucketCount is one non-empty histogram bucket: observations with
// latency <= Bound (Bound < 0 means +Inf).
type BucketCount struct {
	Bound time.Duration `json:"bound_ns"`
	Count int64         `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Only
// non-empty buckets are materialized.
type HistogramSnapshot struct {
	Count    int64         `json:"count"`
	SumNanos int64         `json:"sum_ns"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the average observed duration (0 with no observations).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

// metricKind tags a registry entry for the text dump.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

type entry struct {
	name string
	kind metricKind
	help string
	c    *Counter
	g    *Gauge
	// Func-backed kinds collect every registration under the name and
	// sum them at read time, so N components (e.g. sharded tables) each
	// exporting their own collector aggregate into one series.
	fns []func() int64
	// Histograms likewise: Histogram() hands out one shared handle, but
	// AddHistogram may attach several component-owned histograms that
	// are merged bucket-wise on snapshot and exposition.
	hs []*Histogram
}

// helpText returns the entry's HELP line body: the curated text when one
// was set, else a readable default derived from the name. Newlines and
// backslashes are escaped per the exposition format.
func (e *entry) helpText() string {
	h := e.help
	if h == "" {
		h = strings.ReplaceAll(e.name, "_", " ")
	}
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func (e *entry) value() int64 {
	switch e.kind {
	case kindCounter:
		return e.c.Load()
	case kindGauge:
		return e.g.Load()
	case kindCounterFunc, kindGaugeFunc:
		var v int64
		for _, fn := range e.fns {
			v += fn()
		}
		return v
	}
	return 0
}

// histSnapshot merges the entry's histograms into one snapshot.
func (e *entry) histSnapshot() HistogramSnapshot {
	if len(e.hs) == 1 {
		return e.hs[0].Snapshot()
	}
	var s HistogramSnapshot
	var buckets [nBuckets]int64
	for _, h := range e.hs {
		s.Count += h.count.Load()
		s.SumNanos += h.sum.Load()
		for i := range h.buckets {
			buckets[i] += h.buckets[i].Load()
		}
	}
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, BucketCount{Bound: BucketBound(i), Count: n})
	}
	return s
}

// Registry is an ordered, deduplicating collection of named metrics.
// Registration takes a lock and may allocate; it happens at open time.
// The registered metrics themselves are lock-free.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byName  map[string]*entry
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// register adds e under its name, or returns the existing entry. A name
// reused with a different metric kind panics: that is a programming
// error, not a runtime condition.
func (r *Registry) register(name string, kind metricKind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %q reregistered as a different kind", name))
		}
		return e
	}
	e := &entry{name: name, kind: kind}
	r.byName[name] = e
	r.entries = append(r.entries, e)
	return e
}

// Help attaches a HELP description to the metric called name, emitted
// by WriteProm. Unknown names are ignored; metrics without curated help
// get a default derived from their name, so the dump always carries a
// HELP line per series.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		e.help = help
	}
}

// Counter registers (or finds) the counter called name.
func (r *Registry) Counter(name string) *Counter {
	e := r.register(name, kindCounter)
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// Gauge registers (or finds) the gauge called name.
func (r *Registry) Gauge(name string) *Gauge {
	e := r.register(name, kindGauge)
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// CounterFunc registers a counter whose value is computed by fn at read
// time (for components that maintain their own counters, e.g. per-shard
// tallies summed on scrape). Registering the same name again adds fn to
// the series: reads report the sum of every registered collector, so N
// tables sharing a registry aggregate instead of shadowing each other.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	e := r.register(name, kindCounterFunc)
	e.fns = append(e.fns, fn)
}

// GaugeFunc registers a computed gauge; like CounterFunc, repeated
// registrations under one name are summed at read time.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	e := r.register(name, kindGaugeFunc)
	e.fns = append(e.fns, fn)
}

// Histogram registers (or finds) the latency histogram called name. All
// callers receive the same handle, so their observations aggregate.
func (r *Registry) Histogram(name string) *Histogram {
	e := r.register(name, kindHistogram)
	if len(e.hs) == 0 {
		e.hs = append(e.hs, &Histogram{})
	}
	return e.hs[0]
}

// AddHistogram registers an existing histogram under name, for components
// that own their histogram (e.g. a page store's latency tracking) and
// want it exported. Attaching a second distinct histogram to the same
// name merges them: snapshots and the text exposition report bucket-wise
// sums, so per-shard stores publish one combined latency series. The
// histogram handed in is returned (registering the same one twice is a
// no-op).
func (r *Registry) AddHistogram(name string, h *Histogram) *Histogram {
	e := r.register(name, kindHistogram)
	for _, have := range e.hs {
		if have == h {
			return h
		}
	}
	e.hs = append(e.hs, h)
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry,
// usable directly in tests and serializable as JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Counter returns a counter's value (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge's value (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Snapshot captures every registered metric. Counters are loaded
// atomically; the snapshot as a whole is near-point-in-time (operations
// may land between loads), but each counter value is itself consistent
// and monotonic across successive snapshots.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, e := range entries {
		switch e.kind {
		case kindCounter, kindCounterFunc:
			s.Counters[e.name] = e.value()
		case kindGauge, kindGaugeFunc:
			s.Gauges[e.name] = e.value()
		case kindHistogram:
			s.Histograms[e.name] = e.histSnapshot()
		}
	}
	return s
}

// WriteProm renders the registry in the Prometheus text exposition
// format (the expvar-era "just scrape text" contract): each series gets
// a # HELP and # TYPE line, and histograms emit cumulative _bucket
// series ending in le="+Inf" plus _sum and _count, with bucket bounds
// in seconds.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	for _, e := range entries {
		var err error
		switch e.kind {
		case kindCounter, kindCounterFunc:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				e.name, e.helpText(), e.name, e.name, e.value())
		case kindGauge, kindGaugeFunc:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
				e.name, e.helpText(), e.name, e.name, e.value())
		case kindHistogram:
			err = writePromHistogram(w, e.name, e.helpText(), e.hs)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name, help string, hs []*Histogram) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	cum, count, sum := int64(0), int64(0), time.Duration(0)
	for _, h := range hs {
		count += h.Count()
		sum += h.Sum()
	}
	for i := 0; i < nBuckets; i++ {
		n := int64(0)
		for _, h := range hs {
			n += h.buckets[i].Load()
		}
		cum += n
		if n == 0 && i < nBuckets-1 {
			continue // keep the dump short: only materialized buckets
		}
		le := "+Inf"
		if b := BucketBound(i); b >= 0 {
			le = fmt.Sprintf("%g", b.Seconds())
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n",
		name, sum.Seconds(), name, count)
	return err
}

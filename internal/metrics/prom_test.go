package metrics

import (
	"bufio"
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestWritePromConformance walks the text dump line by line and enforces
// the Prometheus text exposition format: every series preceded by HELP
// and TYPE lines, valid metric names, histogram buckets cumulative and
// terminated by le="+Inf" with _sum/_count following, and no series
// emitted twice.
func TestWritePromConformance(t *testing.T) {
	r := New()
	r.Counter("hash_gets_total").Add(7)
	r.Gauge("hash_keys").Set(42)
	r.CounterFunc("buffer_hits_total", func() int64 { return 3 })
	r.GaugeFunc("buffer_resident", func() int64 { return 9 })
	r.Help("hash_gets_total", "successful Get calls")
	h := r.Histogram("pagefile_read_seconds")
	h.Observe(3 * time.Microsecond)
	h.Observe(900 * time.Microsecond)
	h.Observe(20 * time.Second)          // lands in the +Inf overflow bucket
	r.Histogram("pagefile_sync_seconds") // empty histogram must still be valid

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	checkPromText(t, buf.String())

	// Spot-check the curated help text survived.
	if !strings.Contains(buf.String(), "# HELP hash_gets_total successful Get calls\n") {
		t.Errorf("curated help text missing:\n%s", buf.String())
	}
}

var (
	promName   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]*)"\})? (\S+)$`)
)

// checkPromText is a strict structural validator for the subset of the
// exposition format the registry emits.
func checkPromText(t *testing.T, text string) {
	t.Helper()
	type series struct {
		typ     string
		hasHelp bool
		samples int
		buckets []struct {
			le  float64
			cum int64
		}
		sawInf, sawSum, sawCount bool
	}
	all := make(map[string]*series)
	var curName string

	base := func(name string) (string, string) {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			b := strings.TrimSuffix(name, suf)
			if b != name {
				if s, ok := all[b]; ok && s.typ == "histogram" {
					return b, suf
				}
			}
		}
		return name, ""
	}

	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("HELP line without text: %q", line)
			}
			if !promName.MatchString(name) {
				t.Fatalf("invalid metric name in HELP: %q", line)
			}
			if _, dup := all[name]; dup {
				t.Fatalf("duplicate HELP/series for %s", name)
			}
			all[name] = &series{hasHelp: true}
			curName = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := fields[0], fields[1]
			s, ok := all[name]
			if !ok || !s.hasHelp {
				t.Fatalf("TYPE for %s not preceded by HELP", name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown TYPE %q for %s", typ, name)
			}
			s.typ = typ
			curName = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}

		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, leLabel, leVal, valStr := m[1], m[2], m[3], m[4]
		b, suf := base(name)
		s, ok := all[b]
		if !ok || s.typ == "" {
			t.Fatalf("sample %q precedes its HELP/TYPE lines", line)
		}
		if b != curName {
			t.Fatalf("sample %q interleaved into series %s", line, curName)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}

		switch s.typ {
		case "counter", "gauge":
			if suf != "" || leLabel != "" {
				t.Fatalf("%s sample with histogram shape: %q", s.typ, line)
			}
			s.samples++
			if s.samples > 1 {
				t.Fatalf("duplicate sample for %s", name)
			}
		case "histogram":
			switch suf {
			case "_bucket":
				if leLabel == "" {
					t.Fatalf("bucket without le label: %q", line)
				}
				if s.sawInf {
					t.Fatalf("bucket after +Inf: %q", line)
				}
				le := float64(0)
				if leVal == "+Inf" {
					s.sawInf = true
				} else if le, err = strconv.ParseFloat(leVal, 64); err != nil {
					t.Fatalf("unparseable le in %q: %v", line, err)
				}
				if n := len(s.buckets); n > 0 {
					prev := s.buckets[n-1]
					if !s.sawInf && le <= prev.le {
						t.Fatalf("bucket bounds not increasing at %q", line)
					}
					if int64(val) < prev.cum {
						t.Fatalf("buckets not cumulative at %q (prev %d)", line, prev.cum)
					}
				}
				s.buckets = append(s.buckets, struct {
					le  float64
					cum int64
				}{le, int64(val)})
			case "_sum":
				if s.sawSum {
					t.Fatalf("duplicate _sum for %s", b)
				}
				s.sawSum = true
			case "_count":
				if s.sawCount {
					t.Fatalf("duplicate _count for %s", b)
				}
				s.sawCount = true
				if n := len(s.buckets); n == 0 || s.buckets[n-1].cum != int64(val) {
					t.Fatalf("%s_count %v != +Inf bucket", b, val)
				}
			default:
				t.Fatalf("bare sample %q for histogram %s", line, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for name, s := range all {
		if s.typ == "" {
			t.Errorf("series %s has HELP but no TYPE", name)
		}
		if s.typ == "histogram" {
			if !s.sawInf {
				t.Errorf("histogram %s has no +Inf bucket", name)
			}
			if !s.sawSum || !s.sawCount {
				t.Errorf("histogram %s missing _sum/_count", name)
			}
		}
	}
}

func TestHelpEscaping(t *testing.T) {
	r := New()
	r.Counter("weird_total")
	r.Help("weird_total", "line one\nline \\ two")
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP weird_total line one\nline \\ two` + "\n"
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped help missing; got:\n%s", buf.String())
	}
}

package hashfunc

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func allFuncs() map[string]Func { return ByName }

func TestDeterministic(t *testing.T) {
	for name, f := range allFuncs() {
		t.Run(name, func(t *testing.T) {
			key := []byte("the quick brown fox")
			a, b := f(key), f(key)
			if a != b {
				t.Fatalf("two calls disagree: %#x vs %#x", a, b)
			}
		})
	}
}

func TestEmptyAndShortKeys(t *testing.T) {
	for name, f := range allFuncs() {
		t.Run(name, func(t *testing.T) {
			// Must not panic and must distinguish small inputs at least
			// sometimes.
			_ = f(nil)
			_ = f([]byte{})
			if f([]byte{0}) == f([]byte{0, 0}) && f([]byte{1}) == f([]byte{1, 1}) && f([]byte{2}) == f([]byte{2, 2}) {
				t.Fatalf("%s conflates length-1 and length-2 keys systematically", name)
			}
		})
	}
}

// TestBitRandomizing checks the paper's requirement: nearly identical
// keys (here, keys differing in a single byte) must get radically
// different hash values, so they do not cluster in one bucket when only
// a few bits of the hash are revealed.
func TestBitRandomizing(t *testing.T) {
	// Division and Knuth-multiplicative are used only by the hsearch
	// baseline, which reduces hashes modulo a prime table size rather
	// than masking low bits; the paper does not claim they bit-randomize.
	randomizing := []string{"default", "sdbm", "dbm", "fnv1a"}
	for _, name := range randomizing {
		f := ByName[name]
		t.Run(name, func(t *testing.T) {
			const mask = 63 // 64 buckets
			for pos := 0; pos < 3; pos++ {
				counts := make(map[uint32]int)
				maxCount := 0
				base := []byte("nearly-identical")
				for c := 0; c < 256; c++ {
					k := append([]byte(nil), base...)
					k[4+pos*4] = byte(c)
					b := f(k) & mask
					counts[b]++
					if counts[b] > maxCount {
						maxCount = counts[b]
					}
				}
				// 256 keys over 64 buckets: a bit-randomizing hash hits
				// many buckets and never funnels a large share into one.
				if len(counts) < 24 {
					t.Fatalf("pos %d: only %d/64 buckets hit by 256 single-byte variants", pos, len(counts))
				}
				if maxCount > 64 {
					t.Fatalf("pos %d: %d of 256 single-byte variants share one bucket", pos, maxCount)
				}
			}
		})
	}
}

func TestCollisionRateOnWords(t *testing.T) {
	for _, name := range []string{"default", "sdbm", "fnv1a", "knuth"} {
		f := ByName[name]
		t.Run(name, func(t *testing.T) {
			const n = 20000
			seen := make(map[uint32]int)
			collisions := 0
			for i := 0; i < n; i++ {
				h := f([]byte(fmt.Sprintf("word%dsuffix", i*7)))
				if seen[h] > 0 {
					collisions++
				}
				seen[h]++
			}
			// Birthday bound: expected full-32-bit collisions for 20k keys
			// is ~0.05; allow a generous margin.
			if collisions > 10 {
				t.Fatalf("%d full-width collisions across %d keys", collisions, n)
			}
		})
	}
}

func TestDefaultMatchesPlainRecurrence(t *testing.T) {
	// The unrolled loop must equal the plain per-byte recurrence.
	plain := func(key []byte) uint32 {
		var h uint32
		for _, c := range key {
			h = 0x63c63cd9*h + 0x9c39c33d + uint32(c)
		}
		return h
	}
	f := func(key []byte) bool { return Default(key) == plain(key) }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSDBMMatches65599Recurrence(t *testing.T) {
	// The shift form is exactly h*65599 + c.
	plain := func(key []byte) uint32 {
		var h uint32
		for _, c := range key {
			h = h*65599 + uint32(c)
		}
		return h
	}
	f := func(key []byte) bool { return SDBM(key) == plain(key) }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionsDisagree(t *testing.T) {
	// The registry functions must actually be different functions (the
	// check-hash mechanism depends on it).
	key := CheckKey
	vals := make(map[uint32][]string)
	for name, f := range allFuncs() {
		h := f(key)
		vals[h] = append(vals[h], name)
	}
	if len(vals) < len(allFuncs()) {
		t.Fatalf("some functions coincide on CheckKey: %v", vals)
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping one input bit should flip a substantial fraction of
	// output bits on average (weak avalanche, enough to catch mistakes).
	for _, name := range []string{"default", "fnv1a", "knuth"} {
		f := ByName[name]
		t.Run(name, func(t *testing.T) {
			base := []byte("avalanche-test-key")
			total := 0.0
			samples := 0
			for i := range base {
				for bit := 0; bit < 8; bit++ {
					mod := append([]byte(nil), base...)
					mod[i] ^= 1 << bit
					diff := f(base) ^ f(mod)
					total += float64(popcount(diff))
					samples++
				}
			}
			avg := total / float64(samples)
			if avg < 4 || math.IsNaN(avg) {
				t.Fatalf("average flipped output bits = %.2f, want >= 4", avg)
			}
		})
	}
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

package hashfunc

import (
	"fmt"
	"sort"
	"testing"
)

// BenchmarkHashFuncs measures every registered function over key lengths
// spanning the short-key regime (where loop overhead dominates) through
// page-sized keys (where per-byte throughput dominates). All functions
// must run allocation-free.
func BenchmarkHashFuncs(b *testing.B) {
	names := make([]string, 0, len(ByName))
	for name := range ByName {
		names = append(names, name)
	}
	sort.Strings(names)

	var sink uint32
	for _, name := range names {
		fn := ByName[name]
		for _, size := range []int{8, 32, 256, 4096} {
			key := make([]byte, size)
			for i := range key {
				key[i] = byte(i*131 + 7)
			}
			b.Run(fmt.Sprintf("%s/len=%d", name, size), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(size))
				for i := 0; i < b.N; i++ {
					sink = fn(key)
				}
			})
		}
	}
	_ = sink
}

// Package hashfunc provides the bit-randomizing hash functions used by the
// hashing package and its baselines.
//
// The paper ("A New Hashing Package for UNIX", Seltzer & Yigit, USENIX
// Winter 1991) requires hash functions that produce radically different
// 32-bit values for nearly identical keys, so that similar keys do not
// cluster in one bucket. Several functions are provided; Default is the
// package default (chosen, as in the paper, for cycles-per-call rather than
// strictly minimal collisions), and the remainder back the baseline
// implementations (sdbm, dbm, hsearch) and give applications alternatives
// for time-critical workloads.
package hashfunc

// Func is the signature of a user-suppliable hash function: it takes a byte
// string and returns an unsigned 32-bit hash value. It mirrors the paper's
// "pointer to a byte string and a length" contract.
type Func func(key []byte) uint32

// Default is the hash function used when none is supplied at table-creation
// time: the multiplicative hash shipped as a 4.4BSD hash(3) built-in
// (dcharhash), chosen — as the paper says of its default — for cycles
// executed per call rather than strictly minimal collisions.
func Default(key []byte) uint32 {
	var h uint32
	// h = h*0x63c63cd9 + 0x9c39c33d + c per byte, unrolled eight at a
	// time (the original C used a Duff's device). Re-slicing to an
	// exactly-8-byte view lets the compiler prove every index in the
	// block is in bounds from the single check in the loop condition.
	for len(key) >= 8 {
		k := key[:8:8]
		h = 0x63c63cd9*h + 0x9c39c33d + uint32(k[0])
		h = 0x63c63cd9*h + 0x9c39c33d + uint32(k[1])
		h = 0x63c63cd9*h + 0x9c39c33d + uint32(k[2])
		h = 0x63c63cd9*h + 0x9c39c33d + uint32(k[3])
		h = 0x63c63cd9*h + 0x9c39c33d + uint32(k[4])
		h = 0x63c63cd9*h + 0x9c39c33d + uint32(k[5])
		h = 0x63c63cd9*h + 0x9c39c33d + uint32(k[6])
		h = 0x63c63cd9*h + 0x9c39c33d + uint32(k[7])
		key = key[8:]
	}
	for _, c := range key {
		h = 0x63c63cd9*h + 0x9c39c33d + uint32(c)
	}
	return h
}

// SDBM is the hash used by the sdbm baseline: the classic x65599
// polynomial, h = c + (h<<6) + (h<<16) - h.
func SDBM(key []byte) uint32 {
	var h uint32
	for _, c := range key {
		h = uint32(c) + (h << 6) + (h << 16) - h
	}
	return h
}

// DBM is Ken Thompson's dbm hash as described in [THOM90, TOR88]: a
// multiplicative hash over the bytes with a final mixing constant. dbm and
// ndbm both use it to convert a key into a 32-bit value of which only as
// many bits as necessary are revealed.
func DBM(key []byte) uint32 {
	h := uint32(0)
	for i, c := range key {
		h += uint32(c) * mulTab[i&7]
		h = h*0x41c64e6d + 0x3039
	}
	return h
}

// mulTab perturbs byte positions in DBM so that transposed keys hash apart.
var mulTab = [8]uint32{0x1003f, 0x10f01, 0x3f1d3, 0x52325, 0x6b8b5, 0x7ffff, 0x93b17, 0xa74c9}

// KnuthMultiplicative is the multiplicative method of Knuth Vol. 3 §6.4 used
// by System V hsearch for its primary bucket address: the key bytes are
// folded to a word which is multiplied by the golden-ratio constant; callers
// take the high bits modulo their table size.
func KnuthMultiplicative(key []byte) uint32 {
	var w uint32
	for _, c := range key {
		w = w<<5 ^ w>>27 ^ uint32(c)
	}
	return w * 2654435761 // floor(2^32 / phi)
}

// Division folds the key to a word for the division method ("DIV" compile
// option in System V hsearch): the caller reduces the result modulo the
// table size and resolves collisions by linear probing.
func Division(key []byte) uint32 {
	var w uint32
	for _, c := range key {
		w = w*31 + uint32(c)
	}
	return w
}

// FNV1a is a modern alternative offered to applications experimenting with
// hash functions per the paper's advice for time-critical uses.
func FNV1a(key []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range key {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// CheckKey is the distinguished key whose hash is stored in the file header
// so that opening an existing table with a different hash function than the
// one it was created with can be detected (paper, "Table Parameterization").
var CheckKey = []byte{0xca, 0xfe, 0xba, 0xbe, 'h', 'a', 's', 'h'}

// ByName maps the registry of built-in functions for tools (hashdump,
// hashbench) that select a function from the command line.
var ByName = map[string]Func{
	"default":  Default,
	"sdbm":     SDBM,
	"dbm":      DBM,
	"knuth":    KnuthMultiplicative,
	"division": Division,
	"fnv1a":    FNV1a,
}

package compat

import (
	"errors"
	"fmt"
	"sync"

	"unixhash/internal/core"
)

// The hsearch-compatible interface. As in System V, the notion of a
// single global hash table is embedded in the interface — one of the
// shortcomings the paper lists. The shim reproduces that single-table
// model faithfully (Hcreate/Hsearch/Hdestroy act on one package-level
// table) while the native core.Table API offers multiple concurrent
// tables, growth beyond nelem, disk residence and runtime hash choice.

// Action selects Hsearch's behaviour, as in <search.h>.
type Action int

// Hsearch actions.
const (
	Find  Action = iota // FIND: look up only
	Enter               // ENTER: insert if absent
)

// Entry mirrors hsearch's ENTRY: a key string and associated data.
type Entry struct {
	Key  string
	Data []byte
}

var (
	hmu    sync.Mutex
	global *core.Table
)

// Hcreate allocates the single global hash table sized for about nelem
// entries. It fails if a table already exists (as hcreate does).
func Hcreate(nelem int) error {
	hmu.Lock()
	defer hmu.Unlock()
	if global != nil {
		return errors.New("hsearch: table already exists")
	}
	t, err := core.Open("", &core.Options{Nelem: nelem})
	if err != nil {
		return err
	}
	global = t
	return nil
}

// Hsearch finds or enters item in the global table. For Find it returns
// the stored entry or nil; for Enter it returns the (possibly
// pre-existing) entry. Unlike System V hsearch, entering into a full
// table cannot fail: the underlying table grows — the paper's "files may
// grow beyond nelem elements" enhancement.
func Hsearch(item Entry, action Action) (*Entry, error) {
	hmu.Lock()
	defer hmu.Unlock()
	if global == nil {
		return nil, errors.New("hsearch: no table (call Hcreate)")
	}
	got, err := global.Get([]byte(item.Key))
	switch {
	case err == nil:
		return &Entry{Key: item.Key, Data: got}, nil
	case !errors.Is(err, core.ErrNotFound):
		return nil, err
	}
	if action == Find {
		return nil, nil
	}
	if err := global.Put([]byte(item.Key), item.Data); err != nil {
		return nil, fmt.Errorf("hsearch: enter: %w", err)
	}
	return &Entry{Key: item.Key, Data: item.Data}, nil
}

// Hdestroy frees the global table.
func Hdestroy() {
	hmu.Lock()
	defer hmu.Unlock()
	if global != nil {
		global.Close()
		global = nil
	}
}

package compat

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"unixhash/internal/ndbm"
)

// TestDBMSupersetOfNdbm drives the compat layer and the real ndbm
// baseline through the same operation stream. Wherever ndbm succeeds the
// two must agree; where ndbm fails (its documented shortcomings) the
// compat layer must still succeed — the paper's compatibility-plus-
// enhancements claim, verified mechanically.
func TestDBMSupersetOfNdbm(t *testing.T) {
	shim, err := DBMOpen("")
	if err != nil {
		t.Fatal(err)
	}
	defer shim.Close()
	old, err := ndbm.Open("", &ndbm.Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()

	rng := rand.New(rand.NewSource(41))
	model := map[string]string{} // what both should contain
	ndbmFailures := 0

	for op := 0; op < 3000; op++ {
		k := fmt.Sprintf("k%03d", rng.Intn(250))
		switch rng.Intn(4) {
		case 0, 1: // replace-store
			var v string
			if rng.Intn(20) == 0 {
				// Too large for ndbm's 256-byte page: its documented
				// failure; the shim must take it anyway.
				v = string(bytes.Repeat([]byte("X"), 300))
			} else {
				v = fmt.Sprintf("v%d", op)
			}
			if rc := shim.Store(Datum(k), Datum(v), DBMReplace); rc != 0 {
				t.Fatalf("op %d: shim Store = %d", op, rc)
			}
			err := old.Store([]byte(k), []byte(v), true)
			if errors.Is(err, ndbm.ErrTooBig) || errors.Is(err, ndbm.ErrSplit) {
				ndbmFailures++
				// ndbm rejected it; track the shim-only key separately
				// by removing it from the shared model.
				delete(model, k)
				continue
			}
			if err != nil {
				t.Fatalf("op %d: ndbm Store: %v", op, err)
			}
			model[k] = v
		case 2: // delete
			rcShim := shim.Delete(Datum(k))
			errOld := old.Delete([]byte(k))
			if _, ok := model[k]; ok {
				if rcShim != 0 || errOld != nil {
					t.Fatalf("op %d: delete of present key: shim=%d ndbm=%v", op, rcShim, errOld)
				}
				delete(model, k)
			}
		case 3: // fetch and compare where both hold the key
			want, ok := model[k]
			got := shim.Fetch(Datum(k))
			gotOld, errOld := old.Fetch([]byte(k))
			if ok {
				if string(got) != want {
					t.Fatalf("op %d: shim Fetch(%q) = %q, want %q", op, k, got, want)
				}
				if errOld != nil || string(gotOld) != want {
					t.Fatalf("op %d: ndbm Fetch(%q) = %q, %v", op, k, gotOld, errOld)
				}
			}
		}
	}
	if ndbmFailures == 0 {
		t.Fatal("the stream never hit an ndbm shortcoming; differential lost its point")
	}
	// Final agreement on the shared model.
	for k, v := range model {
		if got := shim.Fetch(Datum(k)); string(got) != v {
			t.Fatalf("final: shim[%q] = %q, want %q", k, got, v)
		}
		if got, err := old.Fetch([]byte(k)); err != nil || string(got) != v {
			t.Fatalf("final: ndbm[%q] = %q, %v", k, got, err)
		}
	}
}

func TestDBMDiskPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compat-disk.db")
	db, err := DBMOpen(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if rc := db.Store(Datum(fmt.Sprintf("key%d", i)), Datum(fmt.Sprintf("val%d", i)), DBMReplace); rc != 0 {
			t.Fatalf("Store %d = %d", i, rc)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = DBMOpen(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 500; i++ {
		got := db.Fetch(Datum(fmt.Sprintf("key%d", i)))
		if string(got) != fmt.Sprintf("val%d", i) {
			t.Fatalf("Fetch %d after reopen = %q", i, got)
		}
	}
	// The key scan works across reopen too.
	n := 0
	for k := db.Firstkey(); k != nil; k = db.Nextkey() {
		n++
	}
	if n != 500 {
		t.Fatalf("scan after reopen saw %d keys", n)
	}
}

func TestFirstkeyRestartsScan(t *testing.T) {
	db, _ := DBMOpen("")
	defer db.Close()
	for i := 0; i < 20; i++ {
		db.Store(Datum(fmt.Sprintf("k%d", i)), Datum("v"), DBMReplace)
	}
	// Consume part of a scan, then restart with Firstkey.
	db.Firstkey()
	db.Nextkey()
	db.Nextkey()
	n := 0
	for k := db.Firstkey(); k != nil; k = db.Nextkey() {
		n++
	}
	if n != 20 {
		t.Fatalf("restarted scan saw %d of 20", n)
	}
	// Nextkey without Firstkey starts a scan implicitly.
	db2, _ := DBMOpen("")
	defer db2.Close()
	db2.Store(Datum("only"), Datum("v"), DBMReplace)
	if k := db2.Nextkey(); string(k) != "only" {
		t.Fatalf("implicit scan start = %q", k)
	}
}

// Package compat provides the compatibility interfaces the paper's
// package ships alongside its native API: an ndbm-style interface and an
// hsearch-style interface, both implemented on the new hashing package.
// When the native interface is used instead, the additional functionality
// the paper lists becomes available (inserts never fail for size or
// collision reasons, user hash functions, multiple cached pages, multiple
// concurrent tables, disk-resident hsearch tables).
package compat

import (
	"errors"

	"unixhash/internal/core"
)

// Datum is the ndbm datum: a byte string. A nil Datum from Fetch or the
// key cursor means "not found" / "end", as with ndbm's null dptr.
type Datum []byte

// Store flags, as in <ndbm.h>.
const (
	DBMInsert  = 0 // DBM_INSERT: store fails on an existing key
	DBMReplace = 1 // DBM_REPLACE: store overwrites
)

// DBM is an ndbm-compatible handle over a hash Table.
type DBM struct {
	t      *core.Table
	cursor *core.Iterator
}

// DBMOpen opens path as an ndbm-style database. Unlike ndbm there is one
// file, not a .pag/.dir pair; the underlying table's defaults apply.
func DBMOpen(path string) (*DBM, error) {
	t, err := core.Open(path, nil)
	if err != nil {
		return nil, err
	}
	return &DBM{t: t}, nil
}

// DBMOpenTable wraps an already-open table (used to pass options).
func DBMOpenTable(t *core.Table) *DBM { return &DBM{t: t} }

// Fetch returns the datum stored under key, or nil if absent.
func (d *DBM) Fetch(key Datum) Datum {
	v, err := d.t.Get(key)
	if err != nil {
		return nil
	}
	return v
}

// Store inserts key/content. With DBMInsert it returns 1 if the key
// already exists (ndbm's convention); 0 on success; -1 on error.
func (d *DBM) Store(key, content Datum, mode int) int {
	var err error
	if mode == DBMInsert {
		err = d.t.PutNew(key, content)
		if errors.Is(err, core.ErrKeyExists) {
			return 1
		}
	} else {
		err = d.t.Put(key, content)
	}
	if err != nil {
		return -1
	}
	return 0
}

// Delete removes key; 0 on success, -1 if absent or on error.
func (d *DBM) Delete(key Datum) int {
	if err := d.t.Delete(key); err != nil {
		return -1
	}
	return 0
}

// Firstkey starts a key scan and returns the first key (nil if empty).
func (d *DBM) Firstkey() Datum {
	d.cursor = d.t.Iter()
	return d.advance()
}

// Nextkey continues the scan begun by Firstkey.
func (d *DBM) Nextkey() Datum {
	if d.cursor == nil {
		return d.Firstkey()
	}
	return d.advance()
}

func (d *DBM) advance() Datum {
	if !d.cursor.Next() {
		return nil
	}
	// ndbm's nextkey returns only the key; callers needing data issue a
	// second Fetch — the asymmetry the paper's sequential test measures.
	return append(Datum(nil), d.cursor.Key()...)
}

// Error reports whether the underlying cursor hit an error (dbm_error).
func (d *DBM) Error() bool {
	return d.cursor != nil && d.cursor.Err() != nil
}

// Close closes the database (dbm_close).
func (d *DBM) Close() error { return d.t.Close() }

// Table exposes the native table beneath the compatibility shim.
func (d *DBM) Table() *core.Table { return d.t }

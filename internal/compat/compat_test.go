package compat

import (
	"fmt"
	"path/filepath"
	"testing"

	"unixhash/internal/core"
)

func TestDBMRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compat.db")
	db, err := DBMOpen(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if rc := db.Store(Datum("key"), Datum("value"), DBMReplace); rc != 0 {
		t.Fatalf("Store = %d", rc)
	}
	if got := db.Fetch(Datum("key")); string(got) != "value" {
		t.Fatalf("Fetch = %q", got)
	}
	if got := db.Fetch(Datum("missing")); got != nil {
		t.Fatalf("Fetch missing = %q, want nil", got)
	}
}

func TestDBMInsertFlag(t *testing.T) {
	db, err := DBMOpen("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if rc := db.Store(Datum("k"), Datum("v1"), DBMInsert); rc != 0 {
		t.Fatalf("first insert = %d", rc)
	}
	if rc := db.Store(Datum("k"), Datum("v2"), DBMInsert); rc != 1 {
		t.Fatalf("duplicate insert = %d, want 1", rc)
	}
	if got := db.Fetch(Datum("k")); string(got) != "v1" {
		t.Fatalf("Fetch = %q, want v1 preserved", got)
	}
	if rc := db.Store(Datum("k"), Datum("v3"), DBMReplace); rc != 0 {
		t.Fatalf("replace = %d", rc)
	}
	if got := db.Fetch(Datum("k")); string(got) != "v3" {
		t.Fatalf("Fetch = %q", got)
	}
}

func TestDBMDelete(t *testing.T) {
	db, _ := DBMOpen("")
	defer db.Close()
	db.Store(Datum("k"), Datum("v"), DBMReplace)
	if rc := db.Delete(Datum("k")); rc != 0 {
		t.Fatalf("Delete = %d", rc)
	}
	if rc := db.Delete(Datum("k")); rc != -1 {
		t.Fatalf("second Delete = %d, want -1", rc)
	}
}

func TestDBMKeyScan(t *testing.T) {
	db, _ := DBMOpen("")
	defer db.Close()
	want := map[string]bool{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key%d", i)
		db.Store(Datum(k), Datum("v"), DBMReplace)
		want[k] = true
	}
	got := map[string]bool{}
	for k := db.Firstkey(); k != nil; k = db.Nextkey() {
		if got[string(k)] {
			t.Fatalf("scan repeated %q", k)
		}
		got[string(k)] = true
	}
	if db.Error() {
		t.Fatal("scan error")
	}
	if len(got) != len(want) {
		t.Fatalf("scan saw %d keys, want %d", len(got), len(want))
	}
}

func TestDBMBigPairsSucceed(t *testing.T) {
	// Enhanced functionality: inserts never fail because the pair is too
	// large — unlike real ndbm.
	db, _ := DBMOpen("")
	defer db.Close()
	big := make(Datum, 100*1024)
	for i := range big {
		big[i] = byte(i)
	}
	if rc := db.Store(Datum("big"), big, DBMReplace); rc != 0 {
		t.Fatalf("big Store = %d", rc)
	}
	got := db.Fetch(Datum("big"))
	if len(got) != len(big) {
		t.Fatalf("big Fetch returned %d bytes", len(got))
	}
}

func TestDBMOverTable(t *testing.T) {
	tbl, err := core.Open("", &core.Options{Bsize: 512, Ffactor: 16})
	if err != nil {
		t.Fatal(err)
	}
	db := DBMOpenTable(tbl)
	defer db.Close()
	db.Store(Datum("k"), Datum("v"), DBMReplace)
	if got := db.Fetch(Datum("k")); string(got) != "v" {
		t.Fatalf("Fetch = %q", got)
	}
	if db.Table() != tbl {
		t.Fatal("Table() did not return the wrapped table")
	}
}

func TestHsearchInterface(t *testing.T) {
	Hdestroy() // clean slate
	if _, err := Hsearch(Entry{Key: "k"}, Find); err == nil {
		t.Fatal("Hsearch before Hcreate succeeded")
	}
	if err := Hcreate(100); err != nil {
		t.Fatal(err)
	}
	defer Hdestroy()
	if err := Hcreate(100); err == nil {
		t.Fatal("second Hcreate succeeded")
	}

	e, err := Hsearch(Entry{Key: "alpha", Data: []byte("1")}, Enter)
	if err != nil || e == nil || string(e.Data) != "1" {
		t.Fatalf("Enter = %+v, %v", e, err)
	}
	// Enter of an existing key returns the existing entry.
	e, err = Hsearch(Entry{Key: "alpha", Data: []byte("2")}, Enter)
	if err != nil || string(e.Data) != "1" {
		t.Fatalf("re-Enter = %+v, %v; want existing data", e, err)
	}
	e, err = Hsearch(Entry{Key: "alpha"}, Find)
	if err != nil || e == nil || string(e.Data) != "1" {
		t.Fatalf("Find = %+v, %v", e, err)
	}
	e, err = Hsearch(Entry{Key: "missing"}, Find)
	if err != nil || e != nil {
		t.Fatalf("Find missing = %+v, %v", e, err)
	}
}

func TestHsearchGrowsPastNelem(t *testing.T) {
	Hdestroy()
	if err := Hcreate(8); err != nil {
		t.Fatal(err)
	}
	defer Hdestroy()
	// System V hsearch would fail with "table full"; the shim grows.
	for i := 0; i < 1000; i++ {
		if _, err := Hsearch(Entry{Key: fmt.Sprintf("key%d", i), Data: []byte("v")}, Enter); err != nil {
			t.Fatalf("Enter %d: %v", i, err)
		}
	}
	for i := 0; i < 1000; i++ {
		e, err := Hsearch(Entry{Key: fmt.Sprintf("key%d", i)}, Find)
		if err != nil || e == nil {
			t.Fatalf("Find %d = %v, %v", i, e, err)
		}
	}
}

func TestHdestroyAllowsRecreate(t *testing.T) {
	Hdestroy()
	if err := Hcreate(10); err != nil {
		t.Fatal(err)
	}
	Hdestroy()
	if err := Hcreate(10); err != nil {
		t.Fatalf("Hcreate after Hdestroy: %v", err)
	}
	Hdestroy()
}

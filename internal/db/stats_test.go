package db

import (
	"errors"
	"fmt"
	"testing"

	"unixhash/internal/btree"
	"unixhash/internal/core"
	"unixhash/internal/recno"
)

// TestStatsUniform: every method answers Stats() with the common fields
// filled in and exactly its own detail struct non-nil — the redesigned
// replacement for reaching through the adapter with a type assertion.
func TestStatsUniform(t *testing.T) {
	for _, m := range []Method{Hash, Btree, Recno} {
		t.Run(m.String(), func(t *testing.T) {
			d, err := Open("", m, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			const n = 100
			for i := 0; i < n; i++ {
				var err error
				if m == Recno {
					err = d.Put(RecnoKey(i), []byte(fmt.Sprintf("rec-%03d", i)))
				} else {
					err = d.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte("v"))
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("key-%03d", i))
				if m == Recno {
					k = RecnoKey(i)
				}
				if _, err := d.Get(k); err != nil {
					t.Fatal(err)
				}
			}

			s, err := d.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if s.Method != m {
				t.Errorf("Method = %v, want %v", s.Method, m)
			}
			if s.Keys != n {
				t.Errorf("Keys = %d, want %d", s.Keys, n)
			}
			nonNil := 0
			for _, set := range []bool{s.Hash != nil, s.Btree != nil, s.Recno != nil} {
				if set {
					nonNil++
				}
			}
			if nonNil != 1 {
				t.Fatalf("want exactly one detail struct, got %d (%+v)", nonNil, s)
			}

			switch m {
			case Hash:
				if s.Hash.Gets != n || s.Hash.Puts != n {
					t.Errorf("hash ops = %d gets / %d puts, want %d / %d",
						s.Hash.Gets, s.Hash.Puts, n, n)
				}
				if s.Pages == 0 || s.PageSize == 0 {
					t.Errorf("pages = %d x %d, want nonzero", s.Pages, s.PageSize)
				}
				if s.CacheHits == 0 || s.CacheHitRatio <= 0 {
					t.Errorf("cache hits = %d ratio %.2f, want hot-page hits",
						s.CacheHits, s.CacheHitRatio)
				}
				if s.Hash.Buckets == 0 {
					t.Error("hash Buckets = 0")
				}
			case Btree:
				if s.Btree.Gets != n || s.Btree.Puts != n {
					t.Errorf("btree ops = %d gets / %d puts, want %d / %d",
						s.Btree.Gets, s.Btree.Puts, n, n)
				}
				if s.Btree.Depth < 1 {
					t.Errorf("btree Depth = %d, want >= 1", s.Btree.Depth)
				}
			case Recno:
				if s.Recno.Gets != n || s.Recno.Puts != n {
					t.Errorf("recno ops = %d gets / %d puts, want %d / %d",
						s.Recno.Gets, s.Recno.Puts, n, n)
				}
				if s.Recno.Bytes == 0 {
					t.Error("recno Bytes = 0")
				}
			}
		})
	}
}

// TestStatsClosed: Stats on a closed DB propagates the method's
// ErrClosed instead of inventing a stale answer.
func TestStatsClosed(t *testing.T) {
	for _, m := range []Method{Hash, Btree, Recno} {
		t.Run(m.String(), func(t *testing.T) {
			d, err := Open("", m, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Stats(); err == nil {
				t.Fatal("Stats on closed DB succeeded, want error")
			}
		})
	}
}

// TestOpenBadOptions: Open rejects out-of-range options up front with
// ErrBadOptions naming the offending field, instead of silently
// clamping them.
func TestOpenBadOptions(t *testing.T) {
	cases := []struct {
		name  string
		m     Method
		cfg   *Config
		field string
	}{
		{"hash bsize not power of two", Hash,
			&Config{Hash: &core.Options{Bsize: 300}}, "Bsize"},
		{"hash negative ffactor", Hash,
			&Config{Hash: &core.Options{Ffactor: -1}}, "Ffactor"},
		{"hash negative nelem", Hash,
			&Config{Hash: &core.Options{Nelem: -5}}, "Nelem"},
		{"btree tiny page", Btree,
			&Config{Btree: &btree.Options{PageSize: 64}}, "PageSize"},
		{"btree negative cache", Btree,
			&Config{Btree: &btree.Options{CacheSize: -1}}, "CacheSize"},
		{"recno negative reclen", Recno,
			&Config{Recno: &recno.Options{Reclen: -2}}, "Reclen"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Open("", tc.m, tc.cfg)
			if err == nil {
				d.Close()
				t.Fatal("Open succeeded with invalid options")
			}
			if !errors.Is(err, ErrBadOptions) {
				t.Fatalf("err = %v, want ErrBadOptions", err)
			}
			if !containsField(err.Error(), tc.field) {
				t.Errorf("error %q does not name field %q", err, tc.field)
			}
		})
	}

	// Zero values mean "use the default" and always validate.
	for _, m := range []Method{Hash, Btree, Recno} {
		d, err := Open("", m, &Config{
			Hash: &core.Options{}, Btree: &btree.Options{}, Recno: &recno.Options{},
		})
		if err != nil {
			t.Fatalf("%v: zero options rejected: %v", m, err)
		}
		d.Close()
	}
}

func containsField(s, field string) bool {
	for i := 0; i+len(field) <= len(s); i++ {
		if s[i:i+len(field)] == field {
			return true
		}
	}
	return false
}

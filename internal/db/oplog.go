package db

import (
	"errors"
	"sync"

	"unixhash/internal/core"
	"unixhash/internal/oplog"
)

// Per-request attribution at the db layer. The hash adapters (single
// table and sharded) implement OpDB: every uniform operation has an
// ...Op variant taking an op ledger, threaded down through the table's
// latch, WAL, filter and buffer-pool hooks. Callers that manage their
// own ledgers (the network server) use OpDB directly; embedded callers
// wrap a database once with EnableOplog and get a ledger per call,
// recorded into a shared Recorder, with the ledgers pooled so the
// instrumented path stays allocation-free after warm-up.

// OpDB is the optional ledger-carrying face of a DB. A type assertion
// feature-tests it; the btree and recno adapters do not implement it
// (their operations have no phases to attribute).
type OpDB interface {
	// GetBufOp is GetBuf with per-phase attribution into led.
	GetBufOp(led *oplog.Ledger, key, dst []byte) ([]byte, error)
	// PutOp is Put with attribution.
	PutOp(led *oplog.Ledger, key, data []byte) error
	// PutBatchOp is PutBatch with attribution; on a sharded database the
	// fan-out goroutines charge the one ledger concurrently.
	PutBatchOp(led *oplog.Ledger, pairs []Pair) error
	// DeleteOp is Delete with attribution.
	DeleteOp(led *oplog.Ledger, key []byte) error
	// BeginOp is Begin with the ledger pre-attached: Commit charges its
	// WAL marshal, fsync (group-commit join vs lead), latch and split
	// time to led.
	BeginOp(led *oplog.Ledger) (Txn, error)
}

// oplogTxn is the ledger-attachment hook a transaction may offer;
// core.Txn and shardedTxn both do.
type oplogTxn interface{ SetOplog(*oplog.Ledger) }

// --- hash adapter ---

func (d *hashDB) GetBufOp(led *oplog.Ledger, key, dst []byte) ([]byte, error) {
	v, err := d.t.GetBufOp(led, key, dst)
	if errors.Is(err, core.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

func (d *hashDB) PutOp(led *oplog.Ledger, key, data []byte) error {
	return d.t.PutOp(led, key, data)
}

func (d *hashDB) PutBatchOp(led *oplog.Ledger, pairs []Pair) error {
	return d.t.PutBatchOp(led, pairs)
}

func (d *hashDB) DeleteOp(led *oplog.Ledger, key []byte) error {
	err := d.t.DeleteOp(led, key)
	if errors.Is(err, core.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

func (d *hashDB) BeginOp(led *oplog.Ledger) (Txn, error) {
	x, err := d.t.Begin()
	if err != nil {
		return nil, err
	}
	x.SetOplog(led)
	return x, nil
}

// --- sharded adapter ---

// route picks the shard for key, charging the routing decision to led
// and stamping the ledger with the destination shard.
func (s *Sharded) route(led *oplog.Ledger, key []byte) *hashDB {
	if led == nil {
		return s.shard(key)
	}
	st := oplog.Clock()
	i := 0
	if len(s.shards) > 1 {
		i = shardOf(key, len(s.shards))
	}
	led.Since(oplog.PhaseRoute, st)
	led.SetShard(i)
	return s.shards[i]
}

func (s *Sharded) GetBufOp(led *oplog.Ledger, key, dst []byte) ([]byte, error) {
	return s.route(led, key).GetBufOp(led, key, dst)
}

func (s *Sharded) PutOp(led *oplog.Ledger, key, data []byte) error {
	return s.route(led, key).PutOp(led, key, data)
}

func (s *Sharded) DeleteOp(led *oplog.Ledger, key []byte) error {
	return s.route(led, key).DeleteOp(led, key)
}

// PutBatchOp partitions like PutBatch; the partition pass is charged to
// the ledger as routing and the per-shard sub-batches then charge their
// latch/split/pool phases concurrently (the ledger's counters are
// atomic). The ledger's shard stays -1 — a cross-shard batch has no
// single destination — while the phase totals still attribute the time.
func (s *Sharded) PutBatchOp(led *oplog.Ledger, pairs []Pair) error {
	if led == nil {
		return s.PutBatch(pairs)
	}
	if len(s.shards) == 1 {
		led.SetShard(0)
		return s.shards[0].PutBatchOp(led, pairs)
	}
	st := oplog.Clock()
	per := make([][]Pair, len(s.shards))
	for _, p := range pairs {
		i := shardOf(p.Key, len(s.shards))
		per[i] = append(per[i], p)
	}
	led.Since(oplog.PhaseRoute, st)
	return s.fanOut(func(i int, sh *hashDB) error {
		if len(per[i]) == 0 {
			return nil
		}
		return sh.PutBatchOp(led, per[i])
	})
}

func (s *Sharded) BeginOp(led *oplog.Ledger) (Txn, error) {
	x, err := s.Begin()
	if err != nil {
		return nil, err
	}
	x.(*shardedTxn).SetOplog(led)
	return x, nil
}

// SetOplog attaches led to every current and future sub-transaction, so
// a sharded Commit's per-shard WAL and latch time accumulates on one
// ledger.
func (x *shardedTxn) SetOplog(led *oplog.Ledger) {
	x.led = led
	for _, t := range x.sub {
		if o, ok := t.(oplogTxn); ok {
			o.SetOplog(led)
		}
	}
}

// --- instrumented wrapper ---

// ledgerPool recycles ledgers for the EnableOplog wrapper; a Ledger is
// pointer-free, so pooling keeps the instrumented path allocation-free
// after warm-up.
var ledgerPool = sync.Pool{New: func() any { return new(oplog.Ledger) }}

// EnableOplog wraps d so that every call runs under a fresh op ledger
// recorded into rec. The wrapper implements DB (and OpDB, forwarding
// caller-supplied ledgers untouched) and is transparent to ServeTelemetry,
// which unwraps it for registry and tracer mounting and serves rec on
// /debug/oplog. A database whose method has no attribution hooks (btree,
// recno) or a nil rec returns d unchanged.
func EnableOplog(d DB, rec *oplog.Recorder) DB {
	ops, ok := d.(OpDB)
	if !ok || rec == nil {
		return d
	}
	return &opDB{DB: d, ops: ops, rec: rec}
}

// OplogRecorder returns the recorder d records into, if d is an
// EnableOplog wrapper (nil otherwise).
func OplogRecorder(d DB) *oplog.Recorder {
	if o, ok := d.(*opDB); ok {
		return o.rec
	}
	return nil
}

type opDB struct {
	DB // pass-through for Seq, Len, Sync, Stats, Close, PutNew
	ops OpDB
	rec *oplog.Recorder
}

// run executes op under a pooled ledger and records it.
func (o *opDB) run(cmd oplog.Cmd, key []byte, op func(led *oplog.Ledger) error) error {
	led := ledgerPool.Get().(*oplog.Ledger)
	led.StartOp(cmd, key)
	err := op(led)
	led.Finish()
	o.rec.Record(led)
	ledgerPool.Put(led)
	return err
}

func (o *opDB) Get(key []byte) ([]byte, error) {
	var v []byte
	err := o.run(oplog.CmdGet, key, func(led *oplog.Ledger) error {
		var err error
		v, err = o.ops.GetBufOp(led, key, nil)
		return err
	})
	return v, err
}

func (o *opDB) GetBuf(key, dst []byte) ([]byte, error) {
	var v []byte
	err := o.run(oplog.CmdGet, key, func(led *oplog.Ledger) error {
		var err error
		v, err = o.ops.GetBufOp(led, key, dst)
		return err
	})
	return v, err
}

func (o *opDB) Put(key, data []byte) error {
	return o.run(oplog.CmdPut, key, func(led *oplog.Ledger) error {
		return o.ops.PutOp(led, key, data)
	})
}

func (o *opDB) PutBatch(pairs []Pair) error {
	var k []byte
	if len(pairs) > 0 {
		k = pairs[0].Key
	}
	return o.run(oplog.CmdBatch, k, func(led *oplog.Ledger) error {
		return o.ops.PutBatchOp(led, pairs)
	})
}

func (o *opDB) Delete(key []byte) error {
	return o.run(oplog.CmdDelete, key, func(led *oplog.Ledger) error {
		return o.ops.DeleteOp(led, key)
	})
}

// Begin returns a transaction whose Commit runs under a recorded
// ledger. Buffering (Put/Delete on the Txn) is not timed — the ledger
// brackets the commit, where the phases live.
func (o *opDB) Begin() (Txn, error) {
	x, err := o.DB.Begin()
	if err != nil {
		return nil, err
	}
	at, ok := x.(oplogTxn)
	if !ok {
		return x, nil
	}
	return &opTxn{Txn: x, attach: at.SetOplog, rec: o.rec}, nil
}

// Forward caller-managed ledgers untouched (the wrapper still satisfies
// OpDB, so stacking EnableOplog over a server-managed database works).
func (o *opDB) GetBufOp(led *oplog.Ledger, key, dst []byte) ([]byte, error) {
	return o.ops.GetBufOp(led, key, dst)
}
func (o *opDB) PutOp(led *oplog.Ledger, key, data []byte) error {
	return o.ops.PutOp(led, key, data)
}
func (o *opDB) PutBatchOp(led *oplog.Ledger, pairs []Pair) error {
	return o.ops.PutBatchOp(led, pairs)
}
func (o *opDB) DeleteOp(led *oplog.Ledger, key []byte) error {
	return o.ops.DeleteOp(led, key)
}
func (o *opDB) BeginOp(led *oplog.Ledger) (Txn, error) { return o.ops.BeginOp(led) }

// unwrap returns the database under an EnableOplog wrapper for concrete
// type dispatch (ServeTelemetry).
func unwrap(d DB) DB {
	if o, ok := d.(*opDB); ok {
		return o.DB
	}
	return d
}

type opTxn struct {
	Txn
	attach func(*oplog.Ledger)
	rec    *oplog.Recorder
}

func (x *opTxn) Commit() error {
	led := ledgerPool.Get().(*oplog.Ledger)
	led.StartOp(oplog.CmdTxn, nil)
	x.attach(led)
	err := x.Txn.Commit()
	x.attach(nil)
	led.Finish()
	x.rec.Record(led)
	ledgerPool.Put(led)
	return err
}

// Static interface checks: both hash shapes carry ledgers.
var (
	_ OpDB = (*hashDB)(nil)
	_ OpDB = (*Sharded)(nil)
	_ OpDB = (*opDB)(nil)
	_ DB   = (*opDB)(nil)
)

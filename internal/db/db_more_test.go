package db

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"unixhash/internal/btree"
	"unixhash/internal/core"
	"unixhash/internal/recno"
)

func TestMethodString(t *testing.T) {
	cases := map[Method]string{Hash: "hash", Btree: "btree", Recno: "recno", Method(42): "method(42)"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestRecnoKeyRoundtrip(t *testing.T) {
	for _, i := range []int{0, 1, 255, 1 << 20} {
		k := RecnoKey(i)
		got, err := ParseRecnoKey(k)
		if err != nil || got != i {
			t.Fatalf("roundtrip %d -> %d, %v", i, got, err)
		}
	}
	if _, err := ParseRecnoKey([]byte("123")); err == nil {
		t.Fatal("parsed a 3-byte recno key")
	}
}

func TestSyncAllMethods(t *testing.T) {
	dir := t.TempDir()
	for _, m := range []Method{Hash, Btree, Recno} {
		t.Run(m.String(), func(t *testing.T) {
			path := filepath.Join(dir, "sync-"+m.String())
			d, err := Open(path, m, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			k := []byte("key")
			if m == Recno {
				k = RecnoKey(0)
			}
			if err := d.Put(k, []byte("v")); err != nil {
				t.Fatal(err)
			}
			if err := d.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			// A second read-only view sees the synced data.
			var check DB
			switch m {
			case Recno:
				check, err = Open(path, m, nil)
			default:
				check, err = Open(path, m, nil)
			}
			if err != nil {
				t.Fatalf("second open: %v", err)
			}
			defer check.Close()
			if got, err := check.Get(k); err != nil || string(got) != "v" {
				t.Fatalf("synced read = %q, %v", got, err)
			}
		})
	}
}

func TestRecnoDeleteErrors(t *testing.T) {
	d, err := Open("", Recno, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Delete(RecnoKey(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete on empty = %v", err)
	}
	if err := d.Put([]byte("bad"), nil); err == nil {
		t.Fatal("Put with malformed key succeeded")
	}
	if err := d.Delete([]byte("bad")); err == nil {
		t.Fatal("Delete with malformed key succeeded")
	}
	if err := d.PutNew([]byte("bad"), nil); err == nil {
		t.Fatal("PutNew with malformed key succeeded")
	}
}

func TestConfigPassedThrough(t *testing.T) {
	// A tiny page size from the config must reach the hash engine: a
	// pair larger than one 64-byte page forces the big-pair path, which
	// only exists below it.
	d, err := Open("", Hash, &Config{Hash: &core.Options{Bsize: 64, Ffactor: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	big := make([]byte, 4096)
	if err := d.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get([]byte("big"))
	if err != nil || len(got) != len(big) {
		t.Fatalf("Get big = %d bytes, %v", len(got), err)
	}

	// Likewise the btree page size.
	b, err := Open("", Btree, &Config{Btree: &btree.Options{PageSize: 128}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Put([]byte("k"), make([]byte, 2000)); err != nil {
		t.Fatal(err)
	}

	// And the recno fixed record length.
	r, err := Open("", Recno, &Config{Recno: &recno.Options{Reclen: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Put(RecnoKey(0), []byte("ab")); err != nil {
		t.Fatal(err)
	}
	got, err = r.Get(RecnoKey(0))
	if err != nil || len(got) != 4 {
		t.Fatalf("fixed record = %q, %v", got, err)
	}
}

func TestBtreeRangeThroughAdapter(t *testing.T) {
	d, err := Open("", Btree, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 100; i++ {
		if err := d.Put([]byte(fmt.Sprintf("k%02d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	c, err := Seek(d, []byte("k50"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Next() || string(c.Key()) != "k50" {
		t.Fatalf("Seek through adapter -> %q", c.Key())
	}
	if err := Check(d); err != nil {
		t.Fatal(err)
	}

	// The ordered helpers refuse methods that cannot answer them.
	h, err := Open("", Hash, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := Seek(h, nil); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Seek on hash = %v, want ErrUnsupported", err)
	}
	if err := Check(h); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Check on hash = %v, want ErrUnsupported", err)
	}
}

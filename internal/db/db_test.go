package db

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// keyedMethods are the methods with free-form keys; Recno has its own
// record-number tests below.
var keyedMethods = []Method{Hash, Btree}

func TestUniformInterface(t *testing.T) {
	for _, m := range keyedMethods {
		t.Run(m.String(), func(t *testing.T) {
			d, err := Open("", m, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			if err := d.Put([]byte("k"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			got, err := d.Get([]byte("k"))
			if err != nil || string(got) != "v" {
				t.Fatalf("Get = %q, %v", got, err)
			}
			if _, err := d.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get missing = %v", err)
			}
			if err := d.PutNew([]byte("k"), nil); !errors.Is(err, ErrKeyExists) {
				t.Fatalf("PutNew dup = %v", err)
			}
			if err := d.Delete([]byte("k")); err != nil {
				t.Fatal(err)
			}
			if err := d.Delete([]byte("k")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double delete = %v", err)
			}
			if d.Len() != 0 {
				t.Fatalf("Len = %d", d.Len())
			}
		})
	}
}

// TestApplicationIndependence runs the identical application workload
// against hash and btree — the paper's claim that applications are
// "largely independent of the database type".
func TestApplicationIndependence(t *testing.T) {
	results := make(map[Method]map[string]string)
	for _, m := range keyedMethods {
		d, err := Open("", m, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77)) // same seed for both methods
		for op := 0; op < 5000; op++ {
			k := []byte(fmt.Sprintf("k%04d", rng.Intn(700)))
			switch rng.Intn(3) {
			case 0, 1:
				if err := d.Put(k, []byte(fmt.Sprintf("v%d", op))); err != nil {
					t.Fatalf("%v Put: %v", m, err)
				}
			case 2:
				if err := d.Delete(k); err != nil && !errors.Is(err, ErrNotFound) {
					t.Fatalf("%v Delete: %v", m, err)
				}
			}
		}
		final := map[string]string{}
		c := d.Seq()
		for c.Next() {
			final[string(c.Key())] = string(c.Value())
		}
		if c.Err() != nil {
			t.Fatalf("%v scan: %v", m, c.Err())
		}
		if len(final) != d.Len() {
			t.Fatalf("%v: scan %d vs Len %d", m, len(final), d.Len())
		}
		results[m] = final
		d.Close()
	}
	// Identical operations must leave identical contents.
	h, b := results[Hash], results[Btree]
	if len(h) != len(b) {
		t.Fatalf("hash has %d pairs, btree %d", len(h), len(b))
	}
	for k, v := range h {
		if b[k] != v {
			t.Fatalf("divergence at %q: hash %q, btree %q", k, v, b[k])
		}
	}
}

func TestPersistenceAllMethods(t *testing.T) {
	dir := t.TempDir()
	for _, m := range []Method{Hash, Btree, Recno} {
		t.Run(m.String(), func(t *testing.T) {
			path := filepath.Join(dir, m.String()+".db")
			d, err := Open(path, m, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				var k []byte
				if m == Recno {
					k = RecnoKey(i)
				} else {
					k = []byte(fmt.Sprintf("key%03d", i))
				}
				if err := d.Put(k, []byte(fmt.Sprintf("val%d", i))); err != nil {
					t.Fatalf("Put %d: %v", i, err)
				}
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}

			d, err = Open(path, m, nil)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer d.Close()
			if d.Len() != 100 {
				t.Fatalf("Len after reopen = %d", d.Len())
			}
			var k []byte
			if m == Recno {
				k = RecnoKey(42)
			} else {
				k = []byte("key042")
			}
			got, err := d.Get(k)
			if err != nil || string(got) != "val42" {
				t.Fatalf("Get after reopen = %q, %v", got, err)
			}
		})
	}
}

func TestRecnoSemantics(t *testing.T) {
	d, err := Open("", Recno, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Appending via Put at Len.
	for i := 0; i < 5; i++ {
		if err := d.Put(RecnoKey(i), []byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// PutNew on an existing record number fails; at the end it appends.
	if err := d.PutNew(RecnoKey(2), nil); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("PutNew existing = %v", err)
	}
	if err := d.PutNew(RecnoKey(5), []byte("rec5")); err != nil {
		t.Fatal(err)
	}
	// Delete renumbers.
	if err := d.Delete(RecnoKey(0)); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(RecnoKey(0))
	if err != nil || string(got) != "rec1" {
		t.Fatalf("Get(0) after delete = %q, %v", got, err)
	}
	// Cursor yields records in order with RecnoKey keys.
	c := d.Seq()
	i := 0
	for c.Next() {
		n, err := ParseRecnoKey(c.Key())
		if err != nil || n != i {
			t.Fatalf("cursor key = %v, %v; want %d", n, err, i)
		}
		i++
	}
	if c.Err() != nil || i != d.Len() {
		t.Fatalf("cursor saw %d of %d: %v", i, d.Len(), c.Err())
	}
	// Malformed keys are rejected.
	if _, err := d.Get([]byte("short")); err == nil {
		t.Fatal("Get with malformed recno key succeeded")
	}
}

func TestSeqOrderProperties(t *testing.T) {
	// Btree scans ascending; hash scans complete (order unspecified).
	const n = 2000
	for _, m := range keyedMethods {
		d, err := Open("", m, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := d.Put([]byte(fmt.Sprintf("key%05d", i)), nil); err != nil {
				t.Fatal(err)
			}
		}
		c := d.Seq()
		count := 0
		var prev []byte
		ordered := true
		for c.Next() {
			if prev != nil && bytes.Compare(prev, c.Key()) >= 0 {
				ordered = false
			}
			prev = append(prev[:0], c.Key()...)
			count++
		}
		if c.Err() != nil || count != n {
			t.Fatalf("%v scan: %d, %v", m, count, c.Err())
		}
		if m == Btree && !ordered {
			t.Fatal("btree scan not in ascending order")
		}
		d.Close()
	}
}

func TestUnknownMethod(t *testing.T) {
	if _, err := Open("", Method(99), nil); err == nil {
		t.Fatal("opened unknown method")
	}
}

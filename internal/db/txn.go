package db

import (
	"errors"
	"fmt"

	"unixhash/internal/core"
)

// Transactions at the db layer. The hash method's write-ahead log
// (core Options.WAL) powers a real Begin/Commit; the other methods
// report ErrNoTxn, so a caller holding any DB can feature-test
// transactions with one errors.Is check instead of reaching through
// the adapter to the concrete table.

var (
	// ErrNoTxn reports Begin on an access method without transaction
	// support (btree, recno). The hash method supports transactions when
	// opened with a write-ahead log (core.Options.WAL); without one,
	// Begin reports core.ErrNoWAL instead, naming the missing option.
	ErrNoTxn = errors.New("db: access method does not support transactions")
)

// Txn is an atomic batch of puts and deletes against a DB: operations
// buffer until Commit makes them durable and visible as a unit (one log
// append + fsync on the hash method), and Rollback discards them. A Txn
// is not safe for concurrent use by multiple goroutines; independent
// Txns from the same DB may commit concurrently and share a group-commit
// fsync. After Commit or Rollback the Txn is spent.
type Txn interface {
	// Put buffers an insert-or-replace of key -> data. Bytes are copied,
	// so the caller may reuse its slices.
	Put(key, data []byte) error
	// Delete buffers a delete of key. Deleting an absent key is not an
	// error at commit time (redo-log "ensure absent" semantics).
	Delete(key []byte) error
	// Commit makes every buffered op durable and visible atomically.
	Commit() error
	// Rollback discards the transaction; the database is untouched.
	Rollback() error
}

// Begin on the hash adapter: the core transaction satisfies Txn
// directly, so the db layer adds no indirection on the commit path.
func (d *hashDB) Begin() (Txn, error) {
	x, err := d.t.Begin()
	if err != nil {
		return nil, err
	}
	return x, nil
}

// Begin on the btree adapter always fails: the btree has no write-ahead
// log and no atomic multi-op apply.
func (d *btreeDB) Begin() (Txn, error) {
	return nil, fmt.Errorf("%w (btree)", ErrNoTxn)
}

// Begin on the recno adapter always fails.
func (d *recnoDB) Begin() (Txn, error) {
	return nil, fmt.Errorf("%w (recno)", ErrNoTxn)
}

// Static check: the core transaction is usable wherever a db.Txn is.
var _ Txn = (*core.Txn)(nil)

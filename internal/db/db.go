// Package db is the generic database access interface the paper's
// conclusion describes: "All of the access methods are based on a
// key/data pair interface and appear identical to the application layer,
// allowing application implementations to be largely independent of the
// database type." It is the Go shape of 4.4BSD's dbopen(3).
//
// Three access methods implement the interface: Hash (this paper's
// contribution), Btree, and Recno. Applications select one at Open and
// use the uniform key/data operations; recno record numbers travel as
// 8-byte big-endian keys (see RecnoKey).
package db

import (
	"encoding/binary"
	"errors"
	"fmt"

	"unixhash/internal/btree"
	"unixhash/internal/core"
	"unixhash/internal/recno"
)

// Method selects an access method at Open.
type Method int

// The access methods of the package.
const (
	Hash Method = iota
	Btree
	Recno
)

func (m Method) String() string {
	switch m {
	case Hash:
		return "hash"
	case Btree:
		return "btree"
	case Recno:
		return "recno"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Errors normalized across access methods.
var (
	ErrNotFound  = errors.New("db: key not found")
	ErrKeyExists = errors.New("db: key already exists")
	// ErrBadOptions wraps every option-validation failure from Open. The
	// error text names the rejected field and value, so a misconfigured
	// open fails loudly instead of being silently clamped to a default.
	ErrBadOptions = errors.New("db: invalid options")
)

// Config carries per-method options to Open; only the field matching the
// chosen method is consulted, and nil selects defaults.
type Config struct {
	Hash  *core.Options
	Btree *btree.Options
	Recno *recno.Options
}

// Pair is one key/data pair for batched insertion (PutBatch).
type Pair = core.Pair

// DB is the uniform key/data interface over all access methods.
type DB interface {
	// Get returns the data stored under key (ErrNotFound if absent).
	Get(key []byte) ([]byte, error)
	// GetBuf is Get with caller-supplied storage: the data is appended
	// to dst[:0] and the resulting slice returned, so a hot read loop
	// can run allocation-free by reusing one buffer.
	GetBuf(key, dst []byte) ([]byte, error)
	// Put stores data under key, replacing an existing value.
	Put(key, data []byte) error
	// PutBatch stores every pair with Put semantics (last occurrence of
	// a duplicate key wins). The hash method applies the whole batch
	// under one table lock with bucket-grouped inserts and deferred
	// splits (core.Table.PutBatch); the other methods loop Put, so the
	// call is portable but only hash gains the amortization.
	PutBatch(pairs []Pair) error
	// PutNew stores data under key, failing with ErrKeyExists.
	PutNew(key, data []byte) error
	// Delete removes key (ErrNotFound if absent).
	Delete(key []byte) error
	// Begin starts a transaction: an atomic batch of Put/Delete made
	// durable and visible as one unit by Commit. Real on the hash method
	// when it was opened with a write-ahead log (core.Options.WAL —
	// without one Begin reports core.ErrNoWAL); btree and recno report
	// ErrNoTxn. Sharded databases return a routing transaction that is
	// atomic within each shard (see Sharded.Begin).
	Begin() (Txn, error)
	// Seq returns a cursor over every pair. Hash yields bucket order,
	// Btree ascending key order, Recno record order.
	Seq() Cursor
	// Len reports the number of stored pairs.
	Len() int
	// Sync flushes to stable storage.
	Sync() error
	// Stats reports the database's statistics in the uniform Stats
	// shape; method-specific detail rides in the typed sub-struct. A
	// closed database returns its method's ErrClosed, never a stale
	// snapshot.
	Stats() (Stats, error)
	// Close flushes and closes.
	Close() error
}

// Stats is the uniform statistics view over all access methods: the
// fields every method can answer, plus exactly one method-specific
// sub-struct. It replaces casting a DB to its concrete type to reach
// per-method counters.
type Stats struct {
	Method   Method
	Keys     int64
	Pages    int64 // pages in the backing store (0 for unpaged methods)
	PageSize int   // 0 for unpaged methods
	// Buffer-pool behaviour (zero-valued for unpaged methods).
	CacheHits     int64
	CacheMisses   int64
	CacheHitRatio float64
	// Exactly one of these is non-nil, matching Method.
	Hash  *HashStats
	Btree *BtreeStats
	Recno *RecnoStats
	// Shards carries the per-shard breakdown of a sharded database
	// (OpenSharded): entry i is shard i's own Stats. Nil for unsharded
	// databases; the top-level fields of a sharded Stats are the
	// aggregate over every shard.
	Shards []Stats `json:",omitempty"`
}

// HashStats is the hash method's detail: the paper's fill statistics
// plus the operation and split counters from the metrics registry.
type HashStats struct {
	Buckets            uint32
	OverflowPages      int
	BigPairPages       int
	BitmapPages        int
	MaxChain           int
	ChainDist          []int // ChainDist[i] buckets have chains of i+1 pages
	AvgFill            float64
	EmptyBuckets       int
	Gets               int64
	GetMisses          int64
	Puts               int64
	Deletes            int64
	SplitsControlled   int64
	SplitsUncontrolled int64
	OvflAllocs         int64
	OvflFrees          int64
	Syncs              int64
	// Read-acceleration counters: tag-filter outcomes on Get and
	// vectored chain read-ahead activity.
	FilterHits           int64
	FilterSkips          int64
	FilterFalsePositives int64
	FilterPageSkips      int64
	// FilterHitRate is the fraction of filter consults that proved the
	// key absent without touching a page (skips over all consults).
	FilterHitRate   float64
	Prefetches      int64
	PrefetchedPages int64
	// Write-ahead log activity; all zero for a table without a log.
	WalLSN     uint64 // checkpoint LSN from the header
	WalLastLSN uint64 // last appended commit LSN
	// WalCheckpointLag counts the committed transactions a crash right
	// now would replay: WalLastLSN - WalLSN (summed across shards).
	WalCheckpointLag uint64
	TxnCommits       int64
	WalAppends       int64
	WalFsyncs        int64
	WalFsyncJoins    int64 // commits that shared another committer's fsync
	WalAppendedBytes int64
	WalIOTimeNS      int64
}

// BtreeStats is the btree method's detail.
type BtreeStats struct {
	Depth     int
	FreePages int
	Gets      int64
	GetMisses int64
	Puts      int64
	Deletes   int64
	Syncs     int64
}

// RecnoStats is the recno method's detail.
type RecnoStats struct {
	Bytes     int64
	Reclen    int
	Bval      byte
	Gets      int64
	GetMisses int64
	Puts      int64
	Deletes   int64
	Syncs     int64
}

// Cursor iterates key/data pairs. Key and Value are valid until the next
// call to Next.
type Cursor interface {
	Next() bool
	Key() []byte
	Value() []byte
	Err() error
}

// Open opens path with the chosen access method. An empty path is
// memory-resident for every method.
func Open(path string, m Method, cfg *Config) (DB, error) {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	if err := validate(m, c); err != nil {
		return nil, err
	}
	switch m {
	case Hash:
		t, err := core.Open(path, c.Hash)
		if err != nil {
			return nil, err
		}
		return &hashDB{t}, nil
	case Btree:
		t, err := btree.Open(path, c.Btree)
		if err != nil {
			return nil, err
		}
		return &btreeDB{t}, nil
	case Recno:
		f, err := recno.Open(path, c.Recno)
		if err != nil {
			return nil, err
		}
		return &recnoDB{f}, nil
	default:
		return nil, fmt.Errorf("db: unknown access method %v", m)
	}
}

// validate runs the chosen method's option validation, wrapping any
// failure in ErrBadOptions with the method and field named.
func validate(m Method, c Config) error {
	var err error
	switch m {
	case Hash:
		err = c.Hash.Validate()
	case Btree:
		err = c.Btree.Validate()
	case Recno:
		err = c.Recno.Validate()
	}
	if err != nil {
		return fmt.Errorf("%w: %v option %v", ErrBadOptions, m, err)
	}
	return nil
}

// RecnoKey encodes a record number as a key for the Recno method.
func RecnoKey(i int) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], uint64(i))
	return k[:]
}

// ParseRecnoKey decodes a Recno cursor key back to a record number.
func ParseRecnoKey(k []byte) (int, error) {
	if len(k) != 8 {
		return 0, fmt.Errorf("db: recno key is %d bytes, want 8", len(k))
	}
	return int(binary.BigEndian.Uint64(k)), nil
}

// --- hash adapter ---

type hashDB struct{ t *core.Table }

func (d *hashDB) Get(key []byte) ([]byte, error) {
	v, err := d.t.Get(key)
	if errors.Is(err, core.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

func (d *hashDB) GetBuf(key, dst []byte) ([]byte, error) {
	v, err := d.t.GetBuf(key, dst)
	if errors.Is(err, core.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

func (d *hashDB) Put(key, data []byte) error { return d.t.Put(key, data) }

// PutBatch applies the whole batch under one table lock: pairs grouped
// by bucket, splits deferred to one pass at batch end (see
// core.Table.PutBatch).
func (d *hashDB) PutBatch(pairs []Pair) error { return d.t.PutBatch(pairs) }

func (d *hashDB) PutNew(key, data []byte) error {
	err := d.t.PutNew(key, data)
	if errors.Is(err, core.ErrKeyExists) {
		return ErrKeyExists
	}
	return err
}

func (d *hashDB) Delete(key []byte) error {
	err := d.t.Delete(key)
	if errors.Is(err, core.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

func (d *hashDB) Seq() Cursor  { return d.t.Iter() }
func (d *hashDB) Len() int     { return d.t.Len() }
func (d *hashDB) Sync() error  { return d.t.Sync() }
func (d *hashDB) Close() error { return d.t.Close() }

func (d *hashDB) Stats() (Stats, error) {
	fs, err := d.t.FillStats()
	if err != nil {
		return Stats{}, err
	}
	snap, err := d.t.MetricsSnapshot()
	if err != nil {
		return Stats{}, err
	}
	c := d.t.Pool().Counters()
	s := Stats{
		Method:        Hash,
		Keys:          fs.Keys,
		Pages:         int64(d.t.Store().NPages()),
		PageSize:      d.t.Store().PageSize(),
		CacheHits:     c.Hits,
		CacheMisses:   c.Misses,
		CacheHitRatio: c.HitRatio(),
		Hash: &HashStats{
			Buckets:              fs.Buckets,
			OverflowPages:        fs.OverflowPages,
			BigPairPages:         fs.BigPairPages,
			BitmapPages:          fs.BitmapPages,
			MaxChain:             fs.MaxChain,
			ChainDist:            fs.ChainDist,
			AvgFill:              fs.AvgFill,
			EmptyBuckets:         fs.EmptyBuckets,
			Gets:                 snap.Counter(core.MetricGets),
			GetMisses:            snap.Counter(core.MetricGetMisses),
			Puts:                 snap.Counter(core.MetricPuts),
			Deletes:              snap.Counter(core.MetricDeletes),
			SplitsControlled:     snap.Counter(core.MetricSplitsControlled),
			SplitsUncontrolled:   snap.Counter(core.MetricSplitsUncontrolled),
			OvflAllocs:           snap.Counter(core.MetricOvflAllocs),
			OvflFrees:            snap.Counter(core.MetricOvflFrees),
			Syncs:                snap.Counter(core.MetricSyncs),
			FilterHits:           snap.Counter(core.MetricFilterHits),
			FilterSkips:          snap.Counter(core.MetricFilterSkips),
			FilterFalsePositives: snap.Counter(core.MetricFilterFPs),
			FilterPageSkips:      snap.Counter(core.MetricFilterPageSkips),
			Prefetches:           snap.Counter(core.MetricPrefetches),
			PrefetchedPages:      snap.Counter(core.MetricPrefetchedPages),
			WalLSN:               d.t.Geometry().WalLSN,
			TxnCommits:           snap.Counter(core.MetricTxnCommits),
		},
	}
	if ws, ok := d.t.WALStats(); ok {
		s.Hash.WalAppends = ws.Appends
		s.Hash.WalFsyncs = ws.Fsyncs
		s.Hash.WalFsyncJoins = ws.FsyncJoins
		s.Hash.WalAppendedBytes = ws.AppendedBytes
		s.Hash.WalIOTimeNS = int64(ws.IOTime)
		s.Hash.WalLastLSN = d.t.WALLastLSN()
		if s.Hash.WalLastLSN > s.Hash.WalLSN {
			s.Hash.WalCheckpointLag = s.Hash.WalLastLSN - s.Hash.WalLSN
		}
	}
	s.Hash.FilterHitRate = filterHitRate(s.Hash)
	return s, nil
}

// filterHitRate derives the proven-absent fraction from the raw filter
// counters; zero consults yields zero.
func filterHitRate(h *HashStats) float64 {
	if t := h.FilterHits + h.FilterSkips; t > 0 {
		return float64(h.FilterSkips) / float64(t)
	}
	return 0
}

// table exposes the underlying hash table inside the package (telemetry
// mounting, Verify). Deliberately unexported: applications use the DB
// interface — method-specific operations go through Begin, Verify, Check
// and Seek, never through the concrete table.
func (d *hashDB) table() *core.Table { return d.t }

// --- btree adapter ---

type btreeDB struct{ t *btree.Tree }

func (d *btreeDB) Get(key []byte) ([]byte, error) {
	v, err := d.t.Get(key)
	if errors.Is(err, btree.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

// GetBuf copies into dst for interface parity; the btree has no
// zero-copy read path.
func (d *btreeDB) GetBuf(key, dst []byte) ([]byte, error) {
	v, err := d.Get(key)
	if err != nil {
		return nil, err
	}
	return append(dst[:0], v...), nil
}

func (d *btreeDB) Put(key, data []byte) error { return d.t.Put(key, data) }

// PutBatch loops Put: the btree has no batched write path, so the call
// is sequential-Put semantics at sequential-Put cost.
func (d *btreeDB) PutBatch(pairs []Pair) error {
	for _, p := range pairs {
		if err := d.t.Put(p.Key, p.Data); err != nil {
			return err
		}
	}
	return nil
}

func (d *btreeDB) PutNew(key, data []byte) error {
	err := d.t.PutNew(key, data)
	if errors.Is(err, btree.ErrKeyExists) {
		return ErrKeyExists
	}
	return err
}

func (d *btreeDB) Delete(key []byte) error {
	err := d.t.Delete(key)
	if errors.Is(err, btree.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

func (d *btreeDB) Seq() Cursor  { return d.t.Cursor() }
func (d *btreeDB) Len() int     { return d.t.Len() }
func (d *btreeDB) Sync() error  { return d.t.Sync() }
func (d *btreeDB) Close() error { return d.t.Close() }

func (d *btreeDB) Stats() (Stats, error) {
	ts, err := d.t.Stats()
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Method:        Btree,
		Keys:          ts.Keys,
		Pages:         int64(ts.Pages),
		PageSize:      ts.PageSize,
		CacheHits:     ts.Cache.Hits,
		CacheMisses:   ts.Cache.Misses,
		CacheHitRatio: ts.Cache.HitRatio(),
		Btree: &BtreeStats{
			Depth:     ts.Depth,
			FreePages: ts.FreePages,
			Gets:      ts.Gets,
			GetMisses: ts.GetMisses,
			Puts:      ts.Puts,
			Deletes:   ts.Deletes,
			Syncs:     ts.Syncs,
		},
	}, nil
}

// tree exposes the underlying btree inside the package (Seek, Check).
// Unexported for the same reason as hashDB.table.
func (d *btreeDB) tree() *btree.Tree { return d.t }

// --- recno adapter ---

type recnoDB struct{ f *recno.File }

func (d *recnoDB) recno(key []byte) (int, error) {
	i, err := ParseRecnoKey(key)
	if err != nil {
		return 0, err
	}
	return i, nil
}

func (d *recnoDB) Get(key []byte) ([]byte, error) {
	i, err := d.recno(key)
	if err != nil {
		return nil, err
	}
	v, err := d.f.Get(i)
	if errors.Is(err, recno.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

// GetBuf copies into dst for interface parity.
func (d *recnoDB) GetBuf(key, dst []byte) ([]byte, error) {
	v, err := d.Get(key)
	if err != nil {
		return nil, err
	}
	return append(dst[:0], v...), nil
}

func (d *recnoDB) Put(key, data []byte) error {
	i, err := d.recno(key)
	if err != nil {
		return err
	}
	err = d.f.Put(i, data)
	if errors.Is(err, recno.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

// PutBatch loops Put, parsing each pair's RecnoKey.
func (d *recnoDB) PutBatch(pairs []Pair) error {
	for _, p := range pairs {
		if err := d.Put(p.Key, p.Data); err != nil {
			return err
		}
	}
	return nil
}

func (d *recnoDB) PutNew(key, data []byte) error {
	i, err := d.recno(key)
	if err != nil {
		return err
	}
	if i < d.f.Len() {
		return ErrKeyExists
	}
	err = d.f.Put(i, data)
	if errors.Is(err, recno.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

func (d *recnoDB) Delete(key []byte) error {
	i, err := d.recno(key)
	if err != nil {
		return err
	}
	err = d.f.Delete(i)
	if errors.Is(err, recno.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

func (d *recnoDB) Stats() (Stats, error) {
	fs, err := d.f.Stats()
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Method: Recno,
		Keys:   fs.Records,
		Recno: &RecnoStats{
			Bytes:     fs.Bytes,
			Reclen:    fs.Reclen,
			Bval:      fs.Bval,
			Gets:      fs.Gets,
			GetMisses: fs.GetMisses,
			Puts:      fs.Puts,
			Deletes:   fs.Deletes,
			Syncs:     fs.Syncs,
		},
	}, nil
}

func (d *recnoDB) Seq() Cursor  { return &recnoCursor{f: d.f, i: -1} }
func (d *recnoDB) Len() int     { return d.f.Len() }
func (d *recnoDB) Sync() error  { return d.f.Sync() }
func (d *recnoDB) Close() error { return d.f.Close() }

type recnoCursor struct {
	f   *recno.File
	i   int
	key []byte
	val []byte
	err error
}

func (c *recnoCursor) Next() bool {
	if c.err != nil {
		return false
	}
	c.i++
	v, err := c.f.Get(c.i)
	if errors.Is(err, recno.ErrNotFound) {
		return false
	}
	if err != nil {
		c.err = err
		return false
	}
	c.key = RecnoKey(c.i)
	c.val = v
	return true
}

func (c *recnoCursor) Key() []byte   { return c.key }
func (c *recnoCursor) Value() []byte { return c.val }
func (c *recnoCursor) Err() error    { return c.err }

// Static interface checks.
var (
	_ DB     = (*hashDB)(nil)
	_ DB     = (*btreeDB)(nil)
	_ DB     = (*recnoDB)(nil)
	_ Cursor = (*core.Iterator)(nil)
	_ Cursor = (*btree.Cursor)(nil)
	_ Cursor = (*recnoCursor)(nil)
)

package db

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"unixhash/internal/core"
)

func TestShardedBasicOps(t *testing.T) {
	s, err := OpenSharded("", 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NShards() != 8 {
		t.Fatalf("NShards = %d", s.NShards())
	}

	const n = 500
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, err := s.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get key-%04d = %q, %v", i, v, err)
		}
	}
	if _, err := s.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent key = %v, want ErrNotFound", err)
	}
	if err := s.PutNew([]byte("key-0000"), nil); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("PutNew existing = %v, want ErrKeyExists", err)
	}
	if err := s.Delete([]byte("key-0000")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != n-1 {
		t.Fatalf("Len after delete = %d", s.Len())
	}

	// Seq visits every pair exactly once across all shards.
	seen := map[string]bool{}
	c := s.Seq()
	for c.Next() {
		seen[string(c.Key())] = true
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if len(seen) != n-1 {
		t.Fatalf("Seq saw %d keys, want %d", len(seen), n-1)
	}

	// Every shard got a meaningful share: the router must not funnel a
	// sequential key set into a few shards.
	keys := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key-%04d", i)))
	}
	counts := shardKeys(keys, 8)
	if counts[0] < n/8/4 {
		t.Fatalf("unbalanced shard distribution: %v", counts)
	}
}

func TestShardedPutBatchAndStats(t *testing.T) {
	s, err := OpenSharded("", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 1000
	pairs := make([]Pair, 0, n+1)
	for i := 0; i < n; i++ {
		pairs = append(pairs, Pair{Key: []byte(fmt.Sprintf("b%05d", i)), Data: []byte("v")})
	}
	// In-batch duplicate: last occurrence must win, whichever shard it
	// routes to.
	pairs = append(pairs, Pair{Key: []byte("b00000"), Data: []byte("winner")})
	if err := s.PutBatch(pairs); err != nil {
		t.Fatal(err)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	if v, _ := s.Get([]byte("b00000")); string(v) != "winner" {
		t.Fatalf("duplicate key = %q, want winner", v)
	}

	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Method != Hash || st.Hash == nil {
		t.Fatalf("sharded stats method = %+v", st.Method)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("Shards breakdown has %d entries, want 4", len(st.Shards))
	}
	var keys int64
	for i, sh := range st.Shards {
		if sh.Hash == nil {
			t.Fatalf("shard %d stats missing hash detail", i)
		}
		if sh.Keys == 0 {
			t.Fatalf("shard %d is empty: distribution broken", i)
		}
		keys += sh.Keys
	}
	if keys != st.Keys || st.Keys != int64(n) {
		t.Fatalf("aggregate keys %d, sum of shards %d, want %d", st.Keys, keys, n)
	}
	if st.Hash.Puts == 0 || st.Hash.Buckets == 0 {
		t.Fatalf("aggregate hash detail not folded: %+v", st.Hash)
	}
	if st.CacheHitRatio < 0 || st.CacheHitRatio > 1 {
		t.Fatalf("cache hit ratio %v out of range", st.CacheHitRatio)
	}
}

func TestShardedOptionValidation(t *testing.T) {
	if _, err := OpenSharded("", 0, nil); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("0 shards = %v, want ErrBadOptions", err)
	}
	if _, err := OpenSharded("", MaxShards+1, nil); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("too many shards = %v, want ErrBadOptions", err)
	}
	if _, err := OpenSharded("", 2, &Config{Hash: &core.Options{Bsize: 3}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad bsize = %v, want ErrBadOptions", err)
	}
	if _, err := OpenSharded("", 2, &Config{Hash: &core.Options{TelemetryAddr: ":0"}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("per-shard telemetry = %v, want ErrBadOptions", err)
	}
}

func TestShardedPersistenceAndMarker(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sharded")
	s, err := OpenSharded(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := s.Put([]byte(fmt.Sprintf("p%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Wrong shard count must refuse before any shard opens.
	if _, err := OpenSharded(dir, 8, nil); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("mismatched reopen = %v, want ErrShardMismatch", err)
	}

	s2, err := OpenSharded(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 200 {
		t.Fatalf("reopened Len = %d, want 200", s2.Len())
	}
	for i := 0; i < 200; i++ {
		if _, err := s2.Get([]byte(fmt.Sprintf("p%03d", i))); err != nil {
			t.Fatalf("reopened Get p%03d: %v", i, err)
		}
	}
}

func TestShardedTxn(t *testing.T) {
	s, err := OpenSharded("", 4, &Config{Hash: &core.Options{WAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	x, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Enough keys to touch several shards.
	for i := 0; i < 32; i++ {
		if err := x.Put([]byte(fmt.Sprintf("t%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing visible before commit.
	if s.Len() != 0 {
		t.Fatalf("Len before commit = %d", s.Len())
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 32 {
		t.Fatalf("Len after commit = %d", s.Len())
	}
	if err := x.Commit(); !errors.Is(err, core.ErrTxnDone) {
		t.Fatalf("reused txn = %v, want ErrTxnDone", err)
	}

	// Rollback leaves the database untouched.
	y, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := y.Put([]byte("rolled"), []byte("back")); err != nil {
		t.Fatal(err)
	}
	if err := y.Delete([]byte("t00")); err != nil {
		t.Fatal(err)
	}
	if err := y.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("rolled")); !errors.Is(err, ErrNotFound) {
		t.Fatal("rolled-back put is visible")
	}
	if _, err := s.Get([]byte("t00")); err != nil {
		t.Fatal("rolled-back delete was applied")
	}
}

func TestBeginAcrossMethods(t *testing.T) {
	// Hash without WAL: Begin names the missing option.
	h, err := Open("", Hash, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Begin(); !errors.Is(err, core.ErrNoWAL) {
		t.Fatalf("hash without WAL Begin = %v, want ErrNoWAL", err)
	}
	if _, err := OpenShardedBeginProbe(); err != nil {
		t.Fatal(err)
	}

	// Hash with WAL: a real transaction through the interface.
	hw, err := Open("", Hash, &Config{Hash: &core.Options{WAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer hw.Close()
	x, err := hw.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := hw.Get([]byte("k")); string(v) != "v" {
		t.Fatalf("committed value = %q", v)
	}

	// Btree and recno: ErrNoTxn.
	for _, m := range []Method{Btree, Recno} {
		d, err := Open("", m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Begin(); !errors.Is(err, ErrNoTxn) {
			t.Fatalf("%v Begin = %v, want ErrNoTxn", m, err)
		}
		d.Close()
	}
}

// OpenShardedBeginProbe pins that a sharded database without WAL
// reports the missing option at Begin, not at first use.
func OpenShardedBeginProbe() (struct{}, error) {
	s, err := OpenSharded("", 2, nil)
	if err != nil {
		return struct{}{}, err
	}
	defer s.Close()
	if _, err := s.Begin(); !errors.Is(err, core.ErrNoWAL) {
		return struct{}{}, fmt.Errorf("sharded Begin without WAL = %v, want ErrNoWAL", err)
	}
	return struct{}{}, nil
}

func TestShardedTelemetry(t *testing.T) {
	s, err := OpenSharded("", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 300; i++ {
		if err := s.Put([]byte(fmt.Sprintf("m%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := ServeTelemetry(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// One merged metrics page: the hash_puts_total series must carry
	// every shard's puts (plain counters share one cell), and the
	// func-backed buffer series aggregate across the three pools.
	prom := get("/metrics")
	if !strings.Contains(prom, "hash_puts_total 300") {
		t.Fatalf("/metrics missing aggregated puts:\n%.400s", prom)
	}
	if !strings.Contains(prom, "buffer_capacity") {
		t.Fatalf("/metrics missing buffer series:\n%.400s", prom)
	}

	stats := get("/stats")
	if !strings.Contains(stats, `"Shards"`) {
		t.Fatalf("/stats missing per-shard breakdown:\n%.400s", stats)
	}

	heat := get("/debug/heatmap")
	if !strings.Contains(heat, `"shard": 2`) {
		t.Fatalf("/debug/heatmap missing shard entries:\n%.400s", heat)
	}
}

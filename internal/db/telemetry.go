package db

import (
	"unixhash/internal/telemetry"
)

// ServeTelemetry starts a telemetry HTTP server over an open database
// (see internal/telemetry for the endpoint list). Every method serves
// /stats from db.Stats; the hash method additionally mounts its metrics
// registry (/metrics), tracer (/debug/events, /debug/slowops) and
// bucket heatmap (/debug/heatmap). addr ":0" picks a free port — read
// it back with the server's Addr. The caller owns the returned server
// and must Close it before closing the database.
func ServeTelemetry(d DB, addr string) (*telemetry.Server, error) {
	o := telemetry.Options{
		Stats: func() (any, error) {
			s, err := d.Stats()
			if err != nil {
				return nil, err
			}
			return s, nil
		},
	}
	if h, ok := d.(*hashDB); ok {
		t := h.Table()
		o.Registry = t.MetricsRegistry()
		o.Tracer = t.Tracer()
		o.Heatmap = func() (any, error) { return t.Heatmap() }
	}
	return telemetry.Serve(addr, o)
}

package db

import (
	"fmt"

	"unixhash/internal/core"
	"unixhash/internal/oplog"
	"unixhash/internal/telemetry"
)

// ServeTelemetry starts a telemetry HTTP server over an open database
// (see internal/telemetry for the endpoint list). Every method serves
// /stats from db.Stats; the hash method additionally mounts its metrics
// registry (/metrics), tracer (/debug/events, /debug/slowops) and
// bucket heatmap (/debug/heatmap). A sharded database mounts the shared
// registry every shard aggregates into, the shards' tracer, a per-shard
// heatmap array, and a /stats document whose "Shards" member breaks the
// aggregate down — one ops dashboard for the whole fleet of shards
// (dbserver points its -telemetry flag here). addr ":0" picks a free
// port — read it back with the server's Addr. The caller owns the
// returned server and must Close it before closing the database.
func ServeTelemetry(d DB, addr string) (*telemetry.Server, error) {
	o := telemetry.Options{
		Stats: func() (any, error) {
			s, err := d.Stats()
			if err != nil {
				return nil, err
			}
			return s, nil
		},
	}
	if rec := OplogRecorder(d); rec != nil {
		MountOplog(&o, rec)
	}
	switch x := unwrap(d).(type) {
	case *hashDB:
		t := x.table()
		o.Registry = t.MetricsRegistry()
		o.Tracer = t.Tracer()
		o.Heatmap = func() (any, error) { return t.Heatmap() }
	case *Sharded:
		o.Registry = x.reg
		o.Tracer = x.shards[0].table().Tracer()
		o.Heatmap = func() (any, error) { return shardedHeatmap(x) }
	}
	return telemetry.Serve(addr, o)
}

// MountOplog points o's /debug/oplog endpoints at rec. ServeTelemetry
// calls it for EnableOplog-wrapped databases; callers composing their
// own telemetry.Options (the network server) use it directly.
func MountOplog(o *telemetry.Options, rec *oplog.Recorder) {
	o.Oplog = func() (any, error) { return rec.Snapshot(), nil }
	o.OplogExemplars = func() (any, error) { return rec.Exemplars(), nil }
}

// shardHeat is one shard's slice of the sharded heatmap document.
type shardHeat struct {
	Shard   int           `json:"shard"`
	Heatmap *core.Heatmap `json:"heatmap"`
}

// shardedHeatmap walks every shard's buckets; each shard takes its own
// table lock shared, so the walk runs against live traffic just like
// the single-table endpoint.
func shardedHeatmap(s *Sharded) (any, error) {
	out := make([]shardHeat, 0, len(s.shards))
	for i, sh := range s.shards {
		hm, err := sh.table().Heatmap()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		out = append(out, shardHeat{Shard: i, Heatmap: hm})
	}
	return out, nil
}

package db

import (
	"fmt"
	"testing"
)

// TestPutBatchAllMethods: the batched verb behaves identically to a Put
// loop on every access method — hash amortizes through core.PutBatch,
// btree and recno loop internally, but the application cannot tell.
func TestPutBatchAllMethods(t *testing.T) {
	for _, m := range []Method{Hash, Btree, Recno} {
		t.Run(m.String(), func(t *testing.T) {
			d, err := Open("", m, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			const n = 500
			pairs := make([]Pair, n)
			for i := range pairs {
				key := []byte(fmt.Sprintf("key-%04d", i))
				if m == Recno {
					key = RecnoKey(i)
				}
				pairs[i] = Pair{Key: key, Data: []byte(fmt.Sprintf("val-%04d", i))}
			}
			if err := d.PutBatch(pairs); err != nil {
				t.Fatal(err)
			}
			if got := d.Len(); got != n {
				t.Fatalf("Len = %d, want %d", got, n)
			}
			for i, p := range pairs {
				v, err := d.Get(p.Key)
				if err != nil {
					t.Fatalf("Get %d: %v", i, err)
				}
				if string(v) != fmt.Sprintf("val-%04d", i) {
					t.Fatalf("Get %d = %q", i, v)
				}
			}
			// Replaces through the batch verb, like a Put loop.
			if err := d.PutBatch([]Pair{{Key: pairs[7].Key, Data: []byte("rewritten")}}); err != nil {
				t.Fatal(err)
			}
			if v, _ := d.Get(pairs[7].Key); string(v) != "rewritten" {
				t.Fatalf("after replace batch: %q", v)
			}
			if got := d.Len(); got != n {
				t.Fatalf("Len after replace = %d, want %d", got, n)
			}
		})
	}
}

// TestPutBatchEmpty: an empty batch is a no-op on every method.
func TestPutBatchEmpty(t *testing.T) {
	for _, m := range []Method{Hash, Btree, Recno} {
		d, err := Open("", m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.PutBatch(nil); err != nil {
			t.Errorf("%v: PutBatch(nil) = %v", m, err)
		}
		d.Close()
	}
}

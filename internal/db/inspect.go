package db

import (
	"errors"
	"fmt"
)

// Method-specific inspection through the uniform interface. These
// helpers are the sanctioned replacement for reaching through the
// adapters to the concrete *core.Table / *btree.Tree: callers keep a
// plain DB, and the type dispatch lives here, inside the package.

// ErrUnsupported reports an inspection helper applied to an access
// method that cannot answer it (e.g. Seek on hash, Verify on recno).
var ErrUnsupported = errors.New("db: operation not supported by this access method")

// Verify checks an open database's integrity without modifying it.
// For hash it runs the durability verifier (is the last-synced state
// intact, are the header invariants consistent?); for btree the
// structural checker; a sharded database verifies every shard. Recno
// has no verifier and reports ErrUnsupported.
func Verify(d DB) error {
	switch x := d.(type) {
	case *hashDB:
		return x.table().Verify()
	case *btreeDB:
		return x.tree().Check()
	case *Sharded:
		for i, sh := range x.shards {
			if err := sh.table().Verify(); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
		}
		return nil
	}
	return fmt.Errorf("%w: verify (%v)", ErrUnsupported, methodOf(d))
}

// Check runs the btree structural checker. It exists alongside Verify
// for symmetry with the historical CLI verb; other methods report
// ErrUnsupported.
func Check(d DB) error {
	if x, ok := d.(*btreeDB); ok {
		return x.tree().Check()
	}
	return fmt.Errorf("%w: check (%v)", ErrUnsupported, methodOf(d))
}

// Seek returns an ordered cursor positioned at the first key >= from.
// Only the btree can answer an ordered scan; every other method reports
// ErrUnsupported.
func Seek(d DB, from []byte) (Cursor, error) {
	if x, ok := d.(*btreeDB); ok {
		return x.tree().Seek(from), nil
	}
	return nil, fmt.Errorf("%w: ordered seek (%v)", ErrUnsupported, methodOf(d))
}

// methodOf names a DB's access method for error messages without
// calling Stats (which may fail on a closed database).
func methodOf(d DB) string {
	switch d.(type) {
	case *hashDB:
		return "hash"
	case *btreeDB:
		return "btree"
	case *recnoDB:
		return "recno"
	case *Sharded:
		return "sharded hash"
	}
	return fmt.Sprintf("%T", d)
}

package db

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"unixhash/internal/core"
	"unixhash/internal/metrics"
	"unixhash/internal/oplog"
)

// Sharded is a hash database partitioned into N independent shards:
// every shard is its own WAL-capable hash table with its own buffer
// pool, lock hierarchy and (file-backed) page file, and every key is
// routed to exactly one shard by an independent 64-bit hash. Because
// the shards share nothing, whole-table exclusive sections — PutBatch's
// single-lock epoch, Sync's two-phase flush, a split pass — run in
// parallel across shards, multiplying the single-table write throughput
// for a multi-client load (the dbserver front end is the intended
// driver).
//
// Sharded implements DB, so everything written against the uniform
// interface (CLIs, the network server, ServeTelemetry) works unchanged.
// Every shard exports its metrics into one shared registry — same-named
// series aggregate (see internal/metrics) — so a sharded database
// publishes a single /metrics page.
//
// Cross-shard semantics, where they differ from a single table:
//
//   - Begin returns a transaction that routes ops to per-shard
//     sub-transactions. Commit is atomic within each shard (one WAL
//     commit record per shard) but not across shards: a crash between
//     shard commits can leave some shards committed and others not.
//   - Seq yields shard 0's pairs, then shard 1's, and so on; within a
//     shard the usual bucket order applies.
type Sharded struct {
	dir    string
	shards []*hashDB
	reg    *metrics.Registry
}

// MaxShards bounds OpenSharded's shard count. Each shard costs a buffer
// pool, a page file (plus a WAL file when logging) and a goroutine per
// fan-out call; past a few dozen shards the returns are already gone.
const MaxShards = 1024

// ErrShardMismatch reports opening a sharded directory with a different
// shard count than it was created with — routing would silently send
// keys to the wrong shard, so the open fails loudly instead.
var ErrShardMismatch = errors.New("db: shard count does not match directory")

// shardMarker is the file recording a sharded directory's shard count.
const shardMarker = "SHARDS"

// OpenSharded opens (or creates) a hash database of nshards shards. An
// empty dir is memory-resident, like Open; otherwise dir is created if
// needed and shard i lives in dir/shard-NNN.db (with a sidecar .wal
// when cfg enables logging). Only the Hash config is consulted; its
// options apply to each shard individually (CacheSize budgets one
// shard's pool; Nelem is split across shards). A shared metrics
// registry is used for every shard — the caller's cfg.Hash.Metrics if
// set, else a private one — so the database reports one aggregated
// /metrics view. Options that cannot be sharded (Store, TelemetryAddr)
// are rejected; serve telemetry with ServeTelemetry instead.
func OpenSharded(dir string, nshards int, cfg *Config) (*Sharded, error) {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	if nshards < 1 || nshards > MaxShards {
		return nil, fmt.Errorf("%w: hash option Shards: %d must be in [1, %d]", ErrBadOptions, nshards, MaxShards)
	}
	if err := validate(Hash, c); err != nil {
		return nil, err
	}
	var base core.Options
	if c.Hash != nil {
		base = *c.Hash
	}
	if base.Store != nil {
		return nil, fmt.Errorf("%w: hash option Store: cannot share one store across %d shards", ErrBadOptions, nshards)
	}
	if base.TelemetryAddr != "" {
		return nil, fmt.Errorf("%w: hash option TelemetryAddr: serve a sharded database with db.ServeTelemetry", ErrBadOptions)
	}
	if base.Metrics == nil {
		base.Metrics = metrics.New()
	}
	// Split the expected element count across shards so presizing builds
	// each shard at its final geometry rather than N full-sized tables.
	if base.Nelem > 0 {
		base.Nelem = (base.Nelem + nshards - 1) / nshards
	}

	if dir != "" {
		if err := os.MkdirAll(dir, 0o777); err != nil {
			return nil, fmt.Errorf("db: sharded open: %w", err)
		}
		if err := checkShardMarker(dir, nshards, base.ReadOnly); err != nil {
			return nil, err
		}
	}

	s := &Sharded{dir: dir, reg: base.Metrics, shards: make([]*hashDB, 0, nshards)}
	for i := 0; i < nshards; i++ {
		path := ""
		if dir != "" {
			path = filepath.Join(dir, fmt.Sprintf("shard-%03d.db", i))
		}
		opts := base
		t, err := core.Open(path, &opts)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("db: sharded open: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, &hashDB{t})
	}
	return s, nil
}

// checkShardMarker reconciles nshards with the directory's marker file:
// absent (new directory) it is written, present it must match.
func checkShardMarker(dir string, nshards int, readonly bool) error {
	path := filepath.Join(dir, shardMarker)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		have, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr != nil {
			return fmt.Errorf("db: sharded open: %s: unparseable shard marker %q", path, raw)
		}
		if have != nshards {
			return fmt.Errorf("%w: %s was created with %d shards, opened with %d", ErrShardMismatch, dir, have, nshards)
		}
		return nil
	case os.IsNotExist(err):
		if readonly {
			return fmt.Errorf("db: sharded open: %s: %w", path, err)
		}
		return os.WriteFile(path, []byte(strconv.Itoa(nshards)+"\n"), 0o666)
	default:
		return fmt.Errorf("db: sharded open: %w", err)
	}
}

// shardOf routes a key to its shard: a 64-bit FNV-1a digest finished
// with a murmur-style avalanche, reduced mod N. The router is
// deliberately independent of the tables' own 32-bit hash — a shard's
// table still spreads its keys across all of its buckets even though
// they share a routing residue.
func shardOf(key []byte, n int) int {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211 // FNV-64 prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(n))
}

func (s *Sharded) shard(key []byte) *hashDB {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	return s.shards[shardOf(key, len(s.shards))]
}

// NShards reports the shard count.
func (s *Sharded) NShards() int { return len(s.shards) }

// MetricsRegistry exposes the registry every shard aggregates into,
// for callers (the network server) that want to publish their own
// series on the same page.
func (s *Sharded) MetricsRegistry() *metrics.Registry { return s.reg }

func (s *Sharded) Get(key []byte) ([]byte, error)         { return s.shard(key).Get(key) }
func (s *Sharded) GetBuf(key, dst []byte) ([]byte, error) { return s.shard(key).GetBuf(key, dst) }
func (s *Sharded) Put(key, data []byte) error             { return s.shard(key).Put(key, data) }
func (s *Sharded) PutNew(key, data []byte) error          { return s.shard(key).PutNew(key, data) }
func (s *Sharded) Delete(key []byte) error                { return s.shard(key).Delete(key) }

// PutBatch partitions the batch by destination shard and applies the
// sub-batches concurrently, one PutBatch (one lock epoch, one deferred
// split pass) per involved shard. In-batch last-wins dedupe holds: a
// duplicate key lands in one shard, where the table's own batch dedupe
// applies.
func (s *Sharded) PutBatch(pairs []Pair) error {
	if len(s.shards) == 1 {
		return s.shards[0].PutBatch(pairs)
	}
	per := make([][]Pair, len(s.shards))
	for _, p := range pairs {
		i := shardOf(p.Key, len(s.shards))
		per[i] = append(per[i], p)
	}
	return s.fanOut(func(i int, sh *hashDB) error {
		if len(per[i]) == 0 {
			return nil
		}
		return sh.PutBatch(per[i])
	})
}

// fanOut runs fn on every shard concurrently and joins the errors.
func (s *Sharded) fanOut(fn func(i int, sh *hashDB) error) error {
	if len(s.shards) == 1 {
		return fn(0, s.shards[0])
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *hashDB) {
			defer wg.Done()
			if err := fn(i, sh); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Sync flushes every shard to stable storage, concurrently.
func (s *Sharded) Sync() error {
	return s.fanOut(func(_ int, sh *hashDB) error { return sh.Sync() })
}

// Close flushes and closes every shard (all of them, even if one
// fails), concurrently.
func (s *Sharded) Close() error {
	return s.fanOut(func(_ int, sh *hashDB) error { return sh.Close() })
}

// Len sums the shards' pair counts.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Seq iterates shard 0's pairs, then shard 1's, and so on.
func (s *Sharded) Seq() Cursor { return &shardedCursor{s: s} }

type shardedCursor struct {
	s   *Sharded
	i   int
	cur Cursor
	err error
}

func (c *shardedCursor) Next() bool {
	if c.err != nil {
		return false
	}
	for {
		if c.cur == nil {
			if c.i >= len(c.s.shards) {
				return false
			}
			c.cur = c.s.shards[c.i].Seq()
			c.i++
		}
		if c.cur.Next() {
			return true
		}
		if err := c.cur.Err(); err != nil {
			c.err = err
			return false
		}
		c.cur = nil
	}
}

func (c *shardedCursor) Key() []byte {
	if c.cur == nil {
		return nil
	}
	return c.cur.Key()
}

func (c *shardedCursor) Value() []byte {
	if c.cur == nil {
		return nil
	}
	return c.cur.Value()
}

func (c *shardedCursor) Err() error { return c.err }

// Stats aggregates every shard into the uniform totals and attaches the
// per-shard breakdown in Shards.
func (s *Sharded) Stats() (Stats, error) {
	agg := Stats{Method: Hash, Hash: &HashStats{}, Shards: make([]Stats, 0, len(s.shards))}
	for _, sh := range s.shards {
		st, err := sh.Stats()
		if err != nil {
			return Stats{}, err
		}
		agg.Keys += st.Keys
		agg.Pages += st.Pages
		agg.PageSize = st.PageSize
		agg.CacheHits += st.CacheHits
		agg.CacheMisses += st.CacheMisses
		addHashStats(agg.Hash, st.Hash)
		agg.Shards = append(agg.Shards, st)
	}
	if t := agg.CacheHits + agg.CacheMisses; t > 0 {
		agg.CacheHitRatio = float64(agg.CacheHits) / float64(t)
	}
	// AvgFill is re-weighted by bucket count below; undo the running sum.
	if b := int64(agg.Hash.Buckets); b > 0 {
		agg.Hash.AvgFill /= float64(b)
	}
	// Rates do not sum; rederive the aggregate from the summed counters.
	agg.Hash.FilterHitRate = filterHitRate(agg.Hash)
	return agg, nil
}

// addHashStats folds one shard's hash detail into the aggregate.
// AvgFill accumulates bucket-weighted (divided out by the caller);
// MaxChain takes the max; ChainDist merges elementwise; WalLSN reports
// the furthest shard checkpoint.
func addHashStats(agg, sh *HashStats) {
	agg.AvgFill += sh.AvgFill * float64(sh.Buckets)
	agg.Buckets += sh.Buckets
	agg.OverflowPages += sh.OverflowPages
	agg.BigPairPages += sh.BigPairPages
	agg.BitmapPages += sh.BitmapPages
	agg.EmptyBuckets += sh.EmptyBuckets
	if sh.MaxChain > agg.MaxChain {
		agg.MaxChain = sh.MaxChain
	}
	for len(agg.ChainDist) < len(sh.ChainDist) {
		agg.ChainDist = append(agg.ChainDist, 0)
	}
	for i, n := range sh.ChainDist {
		agg.ChainDist[i] += n
	}
	agg.Gets += sh.Gets
	agg.GetMisses += sh.GetMisses
	agg.Puts += sh.Puts
	agg.Deletes += sh.Deletes
	agg.SplitsControlled += sh.SplitsControlled
	agg.SplitsUncontrolled += sh.SplitsUncontrolled
	agg.OvflAllocs += sh.OvflAllocs
	agg.OvflFrees += sh.OvflFrees
	agg.Syncs += sh.Syncs
	agg.FilterHits += sh.FilterHits
	agg.FilterSkips += sh.FilterSkips
	agg.FilterFalsePositives += sh.FilterFalsePositives
	agg.FilterPageSkips += sh.FilterPageSkips
	agg.Prefetches += sh.Prefetches
	agg.PrefetchedPages += sh.PrefetchedPages
	if sh.WalLSN > agg.WalLSN {
		agg.WalLSN = sh.WalLSN
	}
	if sh.WalLastLSN > agg.WalLastLSN {
		agg.WalLastLSN = sh.WalLastLSN
	}
	agg.WalCheckpointLag += sh.WalCheckpointLag
	agg.TxnCommits += sh.TxnCommits
	agg.WalAppends += sh.WalAppends
	agg.WalFsyncs += sh.WalFsyncs
	agg.WalFsyncJoins += sh.WalFsyncJoins
	agg.WalAppendedBytes += sh.WalAppendedBytes
	agg.WalIOTimeNS += sh.WalIOTimeNS
}

// Begin starts a routing transaction: each op lands in a per-shard
// sub-transaction, begun lazily on first touch. Commit commits the
// sub-transactions in shard order — atomic within each shard, not
// across shards (a crash mid-commit can leave a prefix of the shards
// committed; each shard individually is still all-or-nothing and
// crash-consistent through its own log).
func (s *Sharded) Begin() (Txn, error) {
	// Surface "no WAL" (or read-only, closed...) at Begin rather than at
	// the first Put, matching the single-table contract.
	probe, err := s.shards[0].Begin()
	if err != nil {
		return nil, err
	}
	x := &shardedTxn{s: s, sub: make([]Txn, len(s.shards))}
	x.sub[0] = probe
	return x, nil
}

type shardedTxn struct {
	s    *Sharded
	sub  []Txn
	led  *oplog.Ledger
	done bool
}

func (x *shardedTxn) forKey(key []byte) (Txn, error) {
	i := 0
	if len(x.s.shards) > 1 {
		i = shardOf(key, len(x.s.shards))
	}
	if x.sub[i] == nil {
		t, err := x.s.shards[i].Begin()
		if err != nil {
			return nil, err
		}
		if x.led != nil {
			if o, ok := t.(oplogTxn); ok {
				o.SetOplog(x.led)
			}
		}
		x.sub[i] = t
	}
	return x.sub[i], nil
}

func (x *shardedTxn) Put(key, data []byte) error {
	if x.done {
		return core.ErrTxnDone
	}
	t, err := x.forKey(key)
	if err != nil {
		return err
	}
	return t.Put(key, data)
}

func (x *shardedTxn) Delete(key []byte) error {
	if x.done {
		return core.ErrTxnDone
	}
	t, err := x.forKey(key)
	if err != nil {
		return err
	}
	return t.Delete(key)
}

func (x *shardedTxn) Commit() error {
	if x.done {
		return core.ErrTxnDone
	}
	x.done = true
	for i, t := range x.sub {
		if t == nil {
			continue
		}
		if err := t.Commit(); err != nil {
			// Shards before i are durably committed; roll the rest back
			// so their buffered ops cannot leak into a later reuse.
			for _, rest := range x.sub[i+1:] {
				if rest != nil {
					_ = rest.Rollback()
				}
			}
			return fmt.Errorf("db: sharded commit: shard %d: %w", i, err)
		}
	}
	return nil
}

func (x *shardedTxn) Rollback() error {
	if x.done {
		return core.ErrTxnDone
	}
	x.done = true
	var errs []error
	for _, t := range x.sub {
		if t != nil {
			if err := t.Rollback(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// shardKeys reports how an example key set distributes over n shards —
// a test hook kept close to shardOf so the router and its distribution
// check cannot drift apart.
func shardKeys(keys [][]byte, n int) []int {
	counts := make([]int, n)
	for _, k := range keys {
		counts[shardOf(k, n)]++
	}
	sort.Ints(counts)
	return counts
}

// Static interface checks.
var (
	_ DB     = (*Sharded)(nil)
	_ Txn    = (*shardedTxn)(nil)
	_ Cursor = (*shardedCursor)(nil)
)

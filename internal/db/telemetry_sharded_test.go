package db

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"unixhash/internal/core"
	"unixhash/internal/metrics"
	"unixhash/internal/oplog"
)

// TestShardedTelemetryFiltered is the e2e for the sharded observation
// surface with read acceleration live: a 4-shard database (tag filters
// on by default) under a hit/miss mix, served through the EnableOplog
// wrapper. The aggregated /metrics page must carry the labeled
// hash_filter_* series and the oplog histograms, /debug/heatmap must
// break per-bucket filter occupancy down per shard, /stats must carry
// the derived filter hit rate, and /debug/oplog must attribute the
// traffic this test drove.
func TestShardedTelemetryFiltered(t *testing.T) {
	reg := metrics.New()
	s, err := OpenSharded("", 4, &Config{Hash: &core.Options{Metrics: reg}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := oplog.NewRecorder(reg, s.NShards())
	d := EnableOplog(s, rec)

	pairs := make([]Pair, 512)
	for i := range pairs {
		pairs[i] = Pair{Key: []byte(fmt.Sprintf("k%04d", i)), Data: []byte("v")}
	}
	if err := d.PutBatch(pairs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if _, err := d.Get([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatalf("get hit %d: %v", i, err)
		}
		if _, err := d.Get([]byte(fmt.Sprintf("absent%04d", i))); err != ErrNotFound {
			t.Fatalf("get miss %d = %v, want ErrNotFound", i, err)
		}
	}

	srv, err := ServeTelemetry(d, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// The merged metrics page: the filter series must appear with their
	// curated HELP text (not as bare unlabeled names), and the recorder's
	// histograms must have landed in the same registry.
	prom := string(get("/metrics"))
	for _, want := range []string{
		"# HELP hash_filter_skips_total Tag-filter",
		"# TYPE hash_filter_skips_total counter",
		"# HELP hash_prefetches_total Vectored",
		"# TYPE oplog_op_get_seconds histogram",
		"# TYPE oplog_phase_filter_seconds histogram",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(prom, "hash_filter_skips_total 0\n") {
		t.Error("/metrics: the miss mix drove no filter skips")
	}

	// Per-shard heatmap with the per-bucket filter columns.
	var heat []struct {
		Shard   int `json:"shard"`
		Heatmap struct {
			Buckets uint32 `json:"buckets"`
		} `json:"heatmap"`
	}
	raw := get("/debug/heatmap")
	if err := json.Unmarshal(raw, &heat); err != nil {
		t.Fatalf("/debug/heatmap not a shard array: %v", err)
	}
	if len(heat) != 4 {
		t.Fatalf("/debug/heatmap has %d shards, want 4", len(heat))
	}
	for _, sh := range heat {
		if sh.Heatmap.Buckets == 0 {
			t.Errorf("/debug/heatmap shard %d reports zero buckets", sh.Shard)
		}
	}
	if !strings.Contains(string(raw), `"filter_tags"`) {
		t.Error("/debug/heatmap missing per-bucket filter columns")
	}

	// The stats document carries the derived filter and WAL detail.
	var stats struct {
		Hash struct {
			FilterSkips   int64
			FilterHitRate float64
		}
	}
	if err := json.Unmarshal(get("/stats"), &stats); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if stats.Hash.FilterSkips == 0 || stats.Hash.FilterHitRate == 0 {
		t.Errorf("/stats filter detail empty: skips=%d rate=%g",
			stats.Hash.FilterSkips, stats.Hash.FilterHitRate)
	}

	// The oplog summary must attribute the traffic above, and at least
	// one exemplar must have been retained for it.
	var sum oplog.Summary
	if err := json.Unmarshal(get("/debug/oplog"), &sum); err != nil {
		t.Fatalf("/debug/oplog not JSON: %v", err)
	}
	cmds := map[string]int64{}
	for _, cs := range sum.Commands {
		cmds[cs.Cmd] = cs.Count
	}
	if cmds["get"] != 512 || cmds["batch"] != 1 {
		t.Errorf("/debug/oplog commands = %v, want 512 gets and 1 batch", cmds)
	}
	var exs []oplog.ExemplarView
	if err := json.Unmarshal(get("/debug/oplog/exemplars"), &exs); err != nil {
		t.Fatalf("/debug/oplog/exemplars not JSON: %v", err)
	}
	if len(exs) == 0 {
		t.Error("/debug/oplog/exemplars is empty under recorded load")
	}
}

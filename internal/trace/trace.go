// Package trace is the hashing package's structured event log: a
// fixed-size, lock-free ring buffer of typed, timestamped events emitted
// by the layers that do interesting work — bucket splits, overflow page
// allocation, big-pair chain writes, sync phase transitions, recovery
// steps, batch phases, buffer-pool evictions and slow device operations.
// Where the metrics registry (internal/metrics) answers "how many", the
// trace ring answers "what happened, in what order, and how long did each
// step take" — the paper's controlled/uncontrolled split decisions and
// two-phase sync are *events with structure and duration*, not counters.
//
// The design rules:
//
//   - Emitting an event is wait-free and allocation-free: one atomic
//     fetch-add claims a sequence number, and the slot's words are
//     published with a seqlock protocol (claim marker, payload stores,
//     commit store), so writers never block each other or readers.
//   - A nil *Tracer is fully functional and free: every method nil-checks
//     its receiver, so instrumented code paths pay a single pointer
//     comparison when tracing is disabled — no atomics, no time calls,
//     no allocation.
//   - Readers never block writers: Snapshot validates each slot's commit
//     word before and after copying it, discarding slots that a wrapping
//     writer overtook mid-copy. Sequence numbers in a snapshot are
//     strictly increasing and never torn.
//
// On top of the ring sits a slow-op tracer: operations bracketed with
// OpBegin/OpEnd whose duration meets the configured threshold capture the
// span of ring events emitted during the call — the full event trail of
// one slow Get, Put, Delete or Sync — into a small bounded history that
// the telemetry server exposes.
package trace

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Type identifies what an event describes. The zero value is reserved so
// an uninitialized slot can never masquerade as a real event.
type Type uint8

// The event taxonomy. Arguments are typed per event; see typeInfo for the
// meaning of each argument slot (also rendered as JSON field names by the
// telemetry server).
const (
	EvNone Type = iota

	// Linear-hash growth: one split step (expand) redistributing the
	// entries of old bucket into old and new.
	EvSplitBegin // old bucket, new bucket, max bucket, uncontrolled(0/1)
	EvSplitEnd   // old bucket, new bucket, entries moved, chain pages reclaimed

	// Buddy-in-waiting overflow allocation, in splitpoint addressing.
	EvOvflAlloc // split point, page number, oaddr
	EvOvflReuse // split point, page number, oaddr
	EvOvflFree  // split point, page number, oaddr

	// One big key/data pair written to its dedicated chain.
	EvBigPairWrite // chain pages, key len, data len, start oaddr

	// The ordered two-phase sync protocol.
	EvSyncBegin // sync epoch being opened
	EvSyncPhase // phase code (SyncPhase*), sync epoch
	EvSyncEnd   // sync epoch now durable, noop(0/1)

	// Crash recovery milestones.
	EvRecoveryStep // step code (RecoveryStep*), detail a, detail b

	// Batched write pipeline phases.
	EvBatchBegin // pairs submitted
	EvBatchPhase // phase code (BatchPhase*), detail
	EvBatchEnd   // pairs applied, splits performed

	// Buffer-pool eviction (page pushed out to make room).
	EvBufEvict // addr N, overflow(0/1), dirty(0/1)

	// A Get/Put/Delete/Sync that exceeded the slow-op threshold. The
	// full event span is captured in the slow-op history.
	EvSlowOp // op code (Op*), op argument, events in span

	// A device operation (pagefile) that exceeded the slow-op threshold.
	EvSlowIO // io kind (IORead/IOWrite/IOSync), page number, bytes

	// One bounded chunk of a cooperative split moved: by_helper is 1 when
	// a concurrent writer (not the split initiator) moved it.
	EvSplitChunk // old bucket, new bucket, entries moved, by_helper

	// An operation found its bucket involved in an in-flight split and
	// waited; helped is 1 when it was a writer that moved chunks while
	// waiting.
	EvLatchWait // bucket, helped

	// A transaction's frames landed in the write-ahead log (not yet
	// durable until the covering wal-fsync).
	EvWalAppend // commit lsn, ops, bytes

	// A log fsync made every appended byte below `bytes` durable;
	// followers that joined the group fsync never emit this.
	EvWalFsync // last lsn, bytes

	// A checkpoint folded the applied LSN into the table header and
	// reset the log.
	EvCheckpoint // lsn, epoch, log_bytes

	// A Get consulted the primary page's tag filter and proved its key
	// absent without reading any chain page.
	EvFilterSkip // bucket, chain_len

	// A chain walk installed overflow pages ahead of itself with one
	// vectored read (buffer.Pool.PrefetchChain).
	EvPrefetch // bucket, pages_installed, chain_len
)

// Phase codes carried in EvSyncPhase's first argument.
const (
	SyncPhaseData   = 1 // dirty pages + bitmaps flushed and fsynced
	SyncPhaseHeader = 2 // clean header stamped and fsynced
)

// Step codes carried in EvRecoveryStep's first argument.
const (
	RecoveryStepWalk    = 1 // dry-run walk over every bucket chain
	RecoveryStepGate    = 2 // nkeys+fingerprint acceptance gate passed
	RecoveryStepRepairs = 3 // planned repairs written (arg b: repair count)
	RecoveryStepBitmaps = 4 // overflow-use bitmaps rebuilt (arg b: bitmaps)
	RecoveryStepDone    = 5 // file stamped clean
	RecoveryStepFilters = 6 // tag filters rebuilt from pair data (arg a: pages written)
)

// Phase codes carried in EvBatchPhase's first argument.
const (
	BatchPhasePresize    = 1 // empty table jumped to final geometry (detail: buckets)
	BatchPhaseDistribute = 2 // bucket-grouped distribution pass done (detail: buckets touched)
	BatchPhaseSplits     = 3 // deferred split pass done (detail: splits)
)

// IO kinds carried in EvSlowIO's first argument.
const (
	IORead  = 1
	IOWrite = 2
	IOSync  = 3
)

// typeInfo names each event type and its argument slots for rendering.
var typeInfo = [...]struct {
	name string
	args [4]string
}{
	EvNone:         {name: "none"},
	EvSplitBegin:   {name: "split-begin", args: [4]string{"old_bucket", "new_bucket", "max_bucket", "uncontrolled"}},
	EvSplitEnd:     {name: "split-end", args: [4]string{"old_bucket", "new_bucket", "entries_moved", "pages_reclaimed"}},
	EvOvflAlloc:    {name: "ovfl-alloc", args: [4]string{"split_point", "page_number", "oaddr"}},
	EvOvflReuse:    {name: "ovfl-reuse", args: [4]string{"split_point", "page_number", "oaddr"}},
	EvOvflFree:     {name: "ovfl-free", args: [4]string{"split_point", "page_number", "oaddr"}},
	EvBigPairWrite: {name: "bigpair-write", args: [4]string{"chain_pages", "key_len", "data_len", "start_oaddr"}},
	EvSyncBegin:    {name: "sync-begin", args: [4]string{"epoch"}},
	EvSyncPhase:    {name: "sync-phase", args: [4]string{"phase", "epoch"}},
	EvSyncEnd:      {name: "sync-end", args: [4]string{"epoch", "noop"}},
	EvRecoveryStep: {name: "recovery-step", args: [4]string{"step", "a", "b"}},
	EvBatchBegin:   {name: "batch-begin", args: [4]string{"pairs"}},
	EvBatchPhase:   {name: "batch-phase", args: [4]string{"phase", "detail"}},
	EvBatchEnd:     {name: "batch-end", args: [4]string{"pairs", "splits"}},
	EvBufEvict:     {name: "buf-evict", args: [4]string{"addr", "overflow", "dirty"}},
	EvSlowOp:       {name: "slow-op", args: [4]string{"op", "arg", "events"}},
	EvSlowIO:       {name: "slow-io", args: [4]string{"kind", "page", "bytes"}},
	EvSplitChunk:   {name: "split-chunk", args: [4]string{"old_bucket", "new_bucket", "entries_moved", "by_helper"}},
	EvLatchWait:    {name: "latch-wait", args: [4]string{"bucket", "helped"}},
	EvWalAppend:    {name: "wal-append", args: [4]string{"lsn", "ops", "bytes"}},
	EvWalFsync:     {name: "wal-fsync", args: [4]string{"lsn", "bytes"}},
	EvCheckpoint:   {name: "checkpoint", args: [4]string{"lsn", "epoch", "log_bytes"}},
	EvFilterSkip:   {name: "filter-skip", args: [4]string{"bucket", "chain_len"}},
	EvPrefetch:     {name: "prefetch", args: [4]string{"bucket", "pages_installed", "chain_len"}},
}

// String returns the type's wire name (used by /debug/events filters).
func (t Type) String() string {
	if int(t) < len(typeInfo) && typeInfo[t].name != "" {
		return typeInfo[t].name
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// ParseType resolves a wire name back to a Type (EvNone if unknown).
func ParseType(s string) Type {
	for i := range typeInfo {
		if typeInfo[i].name == s {
			return Type(i)
		}
	}
	return EvNone
}

// Op identifies the table operation a slow-op span belongs to.
type Op uint8

// Operations bracketed by OpBegin/OpEnd.
const (
	OpGet Op = iota + 1
	OpPut
	OpDelete
	OpSync
	OpBatch
	OpCommit
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpSync:
		return "sync"
	case OpBatch:
		return "batch"
	case OpCommit:
		return "commit"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Event is one decoded ring entry.
type Event struct {
	Seq  uint64 // strictly increasing emission order
	Time int64  // unix nanoseconds at emission
	Type Type
	Dur  time.Duration // optional duration (0 for point events)
	Args [4]uint64
}

// String renders the event for logs and CLIs.
func (e Event) String() string {
	info := typeInfo[EvNone]
	if int(e.Type) < len(typeInfo) {
		info = typeInfo[e.Type]
	}
	s := fmt.Sprintf("#%d %s", e.Seq, e.Type)
	for i, name := range info.args {
		if name == "" {
			break
		}
		s += fmt.Sprintf(" %s=%d", name, e.Args[i])
	}
	if e.Dur > 0 {
		s += fmt.Sprintf(" dur=%v", e.Dur)
	}
	return s
}

// MarshalJSON renders the event with named arguments, the shape
// /debug/events serves. Allocation here is fine: JSON rendering is a
// scrape-path operation, never a hot-path one.
func (e Event) MarshalJSON() ([]byte, error) {
	info := typeInfo[EvNone]
	if int(e.Type) < len(typeInfo) {
		info = typeInfo[e.Type]
	}
	args := make(map[string]uint64, 4)
	for i, name := range info.args {
		if name == "" {
			break
		}
		args[name] = e.Args[i]
	}
	return json.Marshal(struct {
		Seq   uint64            `json:"seq"`
		Time  int64             `json:"time_unix_nano"`
		Type  string            `json:"type"`
		DurNS int64             `json:"dur_ns,omitempty"`
		Args  map[string]uint64 `json:"args,omitempty"`
	}{e.Seq, e.Time, e.Type.String(), int64(e.Dur), args})
}

// slot is one ring cell: a commit word plus seven payload words, exactly
// one 64-byte cache line. A slot holding sequence s publishes commit
// value s+1; while a writer owns it, commit carries the busy bit. All
// words are atomics, so readers racing a wrapping writer read stale or
// busy values — never torn bytes — and the commit check rejects them.
type slot struct {
	commit atomic.Uint64
	w      [7]atomic.Uint64 // time, type, dur, args[0..3]
}

const busyBit = uint64(1) << 63

// Ring is the fixed-size, lock-free event buffer. The capacity is a
// power of two; new events overwrite the oldest.
type Ring struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64
}

// NewRing creates a ring holding at least capacity events (rounded up to
// a power of two, minimum 64).
func NewRing(capacity int) *Ring {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]slot, n), mask: uint64(n) - 1}
}

// Cap reports the ring capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Next reports the sequence number the next emitted event will receive.
func (r *Ring) Next() uint64 { return r.next.Load() }

// emit claims the next sequence number and publishes one event.
func (r *Ring) emit(typ Type, now int64, dur int64, a0, a1, a2, a3 uint64) uint64 {
	s := r.next.Add(1) - 1
	sl := &r.slots[s&r.mask]
	// Claim: readers that loaded the previous generation's commit value
	// re-check it after copying and reject the slot once this store (or
	// any payload store ordered after it) lands between their loads.
	sl.commit.Store(s | busyBit)
	sl.w[0].Store(uint64(now))
	sl.w[1].Store(uint64(typ))
	sl.w[2].Store(uint64(dur))
	sl.w[3].Store(a0)
	sl.w[4].Store(a1)
	sl.w[5].Store(a2)
	sl.w[6].Store(a3)
	sl.commit.Store(s + 1)
	return s
}

// read copies the event with sequence s if it is still intact.
func (r *Ring) read(s uint64) (Event, bool) {
	sl := &r.slots[s&r.mask]
	if sl.commit.Load() != s+1 {
		return Event{}, false // busy, overwritten, or not yet published
	}
	e := Event{
		Seq:  s,
		Time: int64(sl.w[0].Load()),
		Type: Type(sl.w[1].Load()),
		Dur:  time.Duration(sl.w[2].Load()),
		Args: [4]uint64{sl.w[3].Load(), sl.w[4].Load(), sl.w[5].Load(), sl.w[6].Load()},
	}
	if sl.commit.Load() != s+1 {
		return Event{}, false // a wrapping writer overtook the copy
	}
	return e, true
}

// Range copies the intact events with sequence numbers in [from, to),
// oldest first. Sequence numbers in the result are strictly increasing;
// events a wrapping writer has reclaimed are silently absent.
func (r *Ring) Range(from, to uint64) []Event {
	if to > r.next.Load() {
		to = r.next.Load()
	}
	if n := uint64(len(r.slots)); to > n && from < to-n {
		from = to - n
	}
	if from >= to {
		return nil
	}
	out := make([]Event, 0, to-from)
	for s := from; s < to; s++ {
		if e, ok := r.read(s); ok {
			out = append(out, e)
		}
	}
	return out
}

// Snapshot copies the newest intact events, up to max (0 or negative
// means the whole ring), oldest first.
func (r *Ring) Snapshot(max int) []Event {
	head := r.next.Load()
	n := uint64(len(r.slots))
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	from := uint64(0)
	if head > n {
		from = head - n
	}
	return r.Range(from, head)
}

// SlowOp is one captured slow-operation span: the operation, its
// duration, and the ring events emitted while it ran.
type SlowOp struct {
	Op     Op            `json:"-"`
	Arg    uint64        `json:"arg"`
	Start  int64         `json:"start_unix_nano"`
	Dur    time.Duration `json:"dur_ns"`
	Events []Event       `json:"events,omitempty"`
}

// MarshalJSON renders the op code as its name.
func (s SlowOp) MarshalJSON() ([]byte, error) {
	type alias SlowOp
	return json.Marshal(struct {
		OpName string `json:"op"`
		alias
	}{s.Op.String(), alias(s)})
}

// DefaultSlowOp is the slow-op capture threshold a new Tracer starts
// with.
const DefaultSlowOp = time.Millisecond

// slowHistory bounds the retained slow-op spans.
const slowHistory = 64

// Tracer is the emission front end over a Ring plus the slow-op span
// capturer. All methods are safe for concurrent use and safe on a nil
// receiver — a nil Tracer is the disabled state and costs one pointer
// comparison per instrumented site.
type Tracer struct {
	ring     *Ring
	slowOpNS atomic.Int64 // ops at/above this duration are captured; <0 disables

	mu       sync.Mutex
	slow     []SlowOp // ring of the most recent slow-op spans
	slowNext int
	slowSeen uint64 // total slow ops observed (including evicted ones)
}

// New creates a tracer whose ring holds at least capacity events (0
// picks 16384 — one megabyte of slots).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 16384
	}
	t := &Tracer{ring: NewRing(capacity)}
	t.slowOpNS.Store(int64(DefaultSlowOp))
	return t
}

// Ring exposes the underlying ring (nil on a nil tracer).
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// SetSlowOpThreshold sets the capture threshold: operations and device
// I/O lasting at least d are recorded. Zero captures every bracketed
// operation; a negative d disables capture.
func (t *Tracer) SetSlowOpThreshold(d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		t.slowOpNS.Store(-1)
		return
	}
	t.slowOpNS.Store(int64(d))
}

// SlowOpThreshold reports the current capture threshold (-1: disabled).
func (t *Tracer) SlowOpThreshold() time.Duration {
	if t == nil {
		return -1
	}
	return time.Duration(t.slowOpNS.Load())
}

// Emit publishes one point event.
func (t *Tracer) Emit(typ Type, a0, a1, a2, a3 uint64) {
	if t == nil {
		return
	}
	t.ring.emit(typ, time.Now().UnixNano(), 0, a0, a1, a2, a3)
}

// EmitDur publishes one event carrying a duration.
func (t *Tracer) EmitDur(typ Type, d time.Duration, a0, a1, a2, a3 uint64) {
	if t == nil {
		return
	}
	t.ring.emit(typ, time.Now().UnixNano(), int64(d), a0, a1, a2, a3)
}

// Span marks the start of a bracketed operation for slow-op capture.
// The zero Span is what a nil tracer hands out and is inert.
type Span struct {
	seq   uint64
	start int64
}

// OpBegin opens a span: the current ring position and wall clock.
func (t *Tracer) OpBegin() Span {
	if t == nil {
		return Span{}
	}
	return Span{seq: t.ring.next.Load(), start: time.Now().UnixNano()}
}

// OpEnd closes a span. If the operation's duration meets the threshold,
// the ring events emitted during it are captured into the slow-op
// history and an EvSlowOp event is published.
func (t *Tracer) OpEnd(op Op, arg uint64, sp Span) {
	if t == nil {
		return
	}
	th := t.slowOpNS.Load()
	if th < 0 {
		return
	}
	d := time.Now().UnixNano() - sp.start
	if d < th {
		return
	}
	evs := t.ring.Range(sp.seq, t.ring.next.Load())
	t.ring.emit(EvSlowOp, sp.start, d, uint64(op), arg, uint64(len(evs)), 0)
	rec := SlowOp{Op: op, Arg: arg, Start: sp.start, Dur: time.Duration(d), Events: evs}
	t.mu.Lock()
	if len(t.slow) < slowHistory {
		t.slow = append(t.slow, rec)
	} else {
		t.slow[t.slowNext] = rec
		t.slowNext = (t.slowNext + 1) % slowHistory
	}
	t.slowSeen++
	t.mu.Unlock()
}

// SlowIO records one device operation's latency; operations at or above
// the threshold emit an EvSlowIO event. Called by the page stores.
func (t *Tracer) SlowIO(kind int, pageno uint32, bytes int, d time.Duration) {
	if t == nil {
		return
	}
	th := t.slowOpNS.Load()
	if th < 0 || int64(d) < th {
		return
	}
	t.ring.emit(EvSlowIO, time.Now().UnixNano(), int64(d), uint64(kind), uint64(pageno), uint64(bytes), 0)
}

// Events returns the newest intact events, oldest first, up to max (0:
// the whole ring). With types given, only those event types are kept.
func (t *Tracer) Events(max int, types ...Type) []Event {
	if t == nil {
		return nil
	}
	evs := t.ring.Snapshot(0)
	if len(types) > 0 {
		kept := evs[:0]
		for _, e := range evs {
			for _, want := range types {
				if e.Type == want {
					kept = append(kept, e)
					break
				}
			}
		}
		evs = kept
	}
	if max > 0 && len(evs) > max {
		evs = evs[len(evs)-max:]
	}
	return evs
}

// SlowOps returns the retained slow-op spans, oldest first, and the
// total number observed (which may exceed the retained window).
func (t *Tracer) SlowOps() ([]SlowOp, uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SlowOp, 0, len(t.slow))
	out = append(out, t.slow[t.slowNext:]...)
	out = append(out, t.slow[:t.slowNext]...)
	return out, t.slowSeen
}

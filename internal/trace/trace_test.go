package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Emit(EvSplitBegin, 1, 2, 3, 0)
	tr.EmitDur(EvSyncEnd, time.Second, 1, 0, 0, 0)
	tr.SlowIO(IORead, 7, 4096, time.Second)
	tr.SetSlowOpThreshold(0)
	sp := tr.OpBegin()
	tr.OpEnd(OpGet, 0, sp)
	if got := tr.Events(0); got != nil {
		t.Fatalf("nil tracer Events = %v, want nil", got)
	}
	if ops, n := tr.SlowOps(); ops != nil || n != 0 {
		t.Fatalf("nil tracer SlowOps = %v, %d", ops, n)
	}
	if tr.Ring() != nil {
		t.Fatal("nil tracer Ring != nil")
	}
}

func TestEmitAndSnapshot(t *testing.T) {
	tr := New(64)
	tr.Emit(EvSplitBegin, 3, 7, 7, 1)
	tr.EmitDur(EvSplitEnd, 5*time.Millisecond, 3, 7, 42, 2)
	tr.Emit(EvOvflAlloc, 2, 11, 2<<11|11, 0)

	evs := tr.Events(0)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Time == 0 {
			t.Fatalf("event %d has zero timestamp", i)
		}
	}
	if evs[0].Type != EvSplitBegin || evs[0].Args != [4]uint64{3, 7, 7, 1} {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Dur != 5*time.Millisecond {
		t.Fatalf("event 1 dur = %v", evs[1].Dur)
	}

	// Filter by type.
	only := tr.Events(0, EvOvflAlloc)
	if len(only) != 1 || only[0].Type != EvOvflAlloc {
		t.Fatalf("filtered events = %v", only)
	}
	// Cap by max keeps the newest.
	last := tr.Events(1)
	if len(last) != 1 || last[0].Type != EvOvflAlloc {
		t.Fatalf("Events(1) = %v", last)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(64) // minimum ring: 64 slots
	n := 64 * 3
	for i := 0; i < n; i++ {
		tr.Emit(EvOvflAlloc, uint64(i), 0, 0, 0)
	}
	evs := tr.Events(0)
	if len(evs) != 64 {
		t.Fatalf("got %d events after wrap, want 64", len(evs))
	}
	for i, e := range evs {
		want := uint64(n - 64 + i)
		if e.Seq != want || e.Args[0] != want {
			t.Fatalf("event %d = seq %d args %v, want seq %d", i, e.Seq, e.Args, want)
		}
	}
}

func TestSlowOpCapture(t *testing.T) {
	tr := New(256)
	tr.SetSlowOpThreshold(0) // capture everything

	sp := tr.OpBegin()
	tr.Emit(EvSplitBegin, 1, 2, 2, 0)
	tr.Emit(EvSplitEnd, 1, 2, 9, 0)
	tr.OpEnd(OpPut, 0xbeef, sp)

	ops, seen := tr.SlowOps()
	if seen != 1 || len(ops) != 1 {
		t.Fatalf("SlowOps = %d ops, %d seen", len(ops), seen)
	}
	op := ops[0]
	if op.Op != OpPut || op.Arg != 0xbeef || op.Dur < 0 {
		t.Fatalf("captured op = %+v", op)
	}
	if len(op.Events) != 2 || op.Events[0].Type != EvSplitBegin || op.Events[1].Type != EvSplitEnd {
		t.Fatalf("captured span = %v", op.Events)
	}
	// The EvSlowOp marker lands in the ring but not inside its own span.
	markers := tr.Events(0, EvSlowOp)
	if len(markers) != 1 || markers[0].Args[0] != uint64(OpPut) || markers[0].Args[2] != 2 {
		t.Fatalf("slow-op marker = %v", markers)
	}
}

func TestSlowOpThresholdFilters(t *testing.T) {
	tr := New(64)
	tr.SetSlowOpThreshold(time.Hour) // nothing is that slow
	sp := tr.OpBegin()
	tr.OpEnd(OpGet, 1, sp)
	if _, seen := tr.SlowOps(); seen != 0 {
		t.Fatal("fast op captured despite high threshold")
	}
	tr.SetSlowOpThreshold(-1) // disabled entirely
	sp = tr.OpBegin()
	tr.OpEnd(OpGet, 1, sp)
	if _, seen := tr.SlowOps(); seen != 0 {
		t.Fatal("op captured while capture disabled")
	}
}

func TestSlowOpHistoryBounded(t *testing.T) {
	tr := New(64)
	tr.SetSlowOpThreshold(0)
	for i := 0; i < slowHistory*2; i++ {
		sp := tr.OpBegin()
		tr.OpEnd(OpSync, uint64(i), sp)
	}
	ops, seen := tr.SlowOps()
	if seen != uint64(slowHistory*2) {
		t.Fatalf("seen = %d", seen)
	}
	if len(ops) != slowHistory {
		t.Fatalf("retained %d, want %d", len(ops), slowHistory)
	}
	// Oldest first, covering the second half.
	for i, op := range ops {
		if want := uint64(slowHistory + i); op.Arg != want {
			t.Fatalf("retained op %d has arg %d, want %d", i, op.Arg, want)
		}
	}
}

func TestTypeNamesRoundTrip(t *testing.T) {
	for ty := EvSplitBegin; ty <= EvSlowIO; ty++ {
		name := ty.String()
		if strings.HasPrefix(name, "type(") {
			t.Fatalf("type %d has no name", ty)
		}
		if got := ParseType(name); got != ty {
			t.Fatalf("ParseType(%q) = %d, want %d", name, got, ty)
		}
	}
	if ParseType("no-such-event") != EvNone {
		t.Fatal("unknown name did not map to EvNone")
	}
}

func TestEventJSON(t *testing.T) {
	e := Event{Seq: 9, Time: 12345, Type: EvSplitBegin, Dur: time.Millisecond, Args: [4]uint64{1, 2, 3, 1}}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["type"] != "split-begin" || m["seq"] != float64(9) {
		t.Fatalf("json = %s", b)
	}
	args, ok := m["args"].(map[string]any)
	if !ok || args["old_bucket"] != float64(1) || args["uncontrolled"] != float64(1) {
		t.Fatalf("json args = %s", b)
	}
}

// TestRingConcurrentNoTears is the -race stress test: many writers
// emitting invariant-carrying events while a reader continuously drains
// snapshots, exactly as /debug/events does. Every observed event must
// be internally consistent (no torn payloads) and every snapshot's
// sequence numbers strictly monotonic.
func TestRingConcurrentNoTears(t *testing.T) {
	tr := New(256) // small ring so wrapping is constant
	const (
		writers = 8
		perW    = 20000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: args carry an invariant (a2 = a0^a1, a3 = a0+a1) that any
	// torn mix of two events would violate.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := uint64(0); i < perW; i++ {
				tr.Emit(EvOvflAlloc, id, i, id^i, id+i)
			}
		}(uint64(w))
	}

	check := func(evs []Event) {
		last := int64(-1)
		for _, e := range evs {
			if int64(e.Seq) <= last {
				t.Errorf("sequence not strictly monotonic: %d after %d", e.Seq, last)
				return
			}
			last = int64(e.Seq)
			if e.Type != EvOvflAlloc {
				t.Errorf("unexpected type %v in seq %d", e.Type, e.Seq)
				return
			}
			a := e.Args
			if a[2] != a[0]^a[1] || a[3] != a[0]+a[1] {
				t.Errorf("torn event seq %d: args %v", e.Seq, a)
				return
			}
		}
	}

	// Reader: drain snapshots concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			check(tr.Events(0))
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	wg.Wait()
	close(stop)
	<-done

	// Quiescent ring: full, newest events only, and all intact.
	evs := tr.Events(0)
	if len(evs) != tr.Ring().Cap() {
		t.Fatalf("quiescent snapshot has %d events, want %d", len(evs), tr.Ring().Cap())
	}
	check(evs)
	if head := tr.Ring().Next(); head != writers*perW {
		t.Fatalf("ring head = %d, want %d", head, writers*perW)
	}
	if evs[len(evs)-1].Seq != writers*perW-1 {
		t.Fatalf("newest seq = %d, want %d", evs[len(evs)-1].Seq, writers*perW-1)
	}
}

func TestEmitAllocFree(t *testing.T) {
	tr := New(64)
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(EvOvflAlloc, 1, 2, 3, 4)
	}); n != 0 {
		t.Fatalf("Emit allocates %.1f times per op, want 0", n)
	}
}

// Benchmarks mirroring the paper's evaluation, one per figure, plus
// micro-benchmarks of the primitive operations. The figure benchmarks
// run scaled-down workloads (the full sweeps live in cmd/hashbench,
// which also prints paper-style tables); these give `go test -bench=.`
// coverage of every experiment and report simulated page I/O counts as
// the "io/op" metric alongside wall time.
package unixhash

import (
	"fmt"
	"testing"

	"unixhash/internal/bench"
	"unixhash/internal/btree"
	"unixhash/internal/core"
	"unixhash/internal/dataset"
	"unixhash/internal/db"
	"unixhash/internal/dynahash"
	"unixhash/internal/gdbm"
	"unixhash/internal/hashfunc"
	"unixhash/internal/hsearch"
	"unixhash/internal/ndbm"
	"unixhash/internal/pagefile"
	"unixhash/internal/sdbm"
)

const benchN = 4000 // scaled dictionary for per-iteration cost

var benchDict = dataset.Dictionary(benchN)

// --- Figure 5: page size x fill factor -------------------------------

func BenchmarkFig5PageSweep(b *testing.B) {
	for _, bs := range []int{128, 256, 1024, 8192} {
		for _, ff := range []int{1, 8, 128} {
			b.Run(fmt.Sprintf("bsize=%d/ffactor=%d", bs, ff), func(b *testing.B) {
				var ios int64
				for i := 0; i < b.N; i++ {
					ios += fig5Iter(b, bs, ff)
				}
				b.ReportMetric(float64(ios)/float64(b.N), "io/op")
			})
		}
	}
}

func fig5Iter(b *testing.B, bs, ff int) int64 {
	b.Helper()
	store := pagefile.NewMem(bs, pagefile.CostModel{})
	t, err := core.Open("", &core.Options{
		Bsize: bs, Ffactor: ff, CacheSize: 1 << 20, Nelem: benchN, Store: store,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range benchDict {
		if err := t.Put(p.Key, p.Data); err != nil {
			b.Fatal(err)
		}
	}
	if err := t.Sync(); err != nil {
		b.Fatal(err)
	}
	for _, p := range benchDict {
		if _, err := t.Get(p.Key); err != nil {
			b.Fatal(err)
		}
	}
	if err := t.Close(); err != nil {
		b.Fatal(err)
	}
	s := store.Stats().Snapshot()
	return s.Reads + s.Writes
}

// --- Figure 6: known final size vs grown from one bucket -------------

func BenchmarkFig6Growth(b *testing.B) {
	for _, mode := range []struct {
		name  string
		nelem int
	}{{"known", benchN}, {"grown", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := core.Open("", &core.Options{
					Bsize: 256, Ffactor: 8, CacheSize: 1 << 20, Nelem: mode.nelem,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range benchDict {
					if err := t.Put(p.Key, p.Data); err != nil {
						b.Fatal(err)
					}
				}
				if err := t.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 7: buffer pool size ---------------------------------------

func BenchmarkFig7BufferSweep(b *testing.B) {
	for _, buf := range []int{1, 64 << 10, 256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("buf=%dKB", buf/1024), func(b *testing.B) {
			var ios int64
			for i := 0; i < b.N; i++ {
				store := pagefile.NewMem(256, pagefile.CostModel{})
				t, err := core.Open("", &core.Options{
					Bsize: 256, Ffactor: 16, CacheSize: buf, Nelem: benchN, Store: store,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range benchDict {
					if err := t.Put(p.Key, p.Data); err != nil {
						b.Fatal(err)
					}
				}
				for _, p := range benchDict {
					if _, err := t.Get(p.Key); err != nil {
						b.Fatal(err)
					}
				}
				if err := t.Close(); err != nil {
					b.Fatal(err)
				}
				s := store.Stats().Snapshot()
				ios += s.Reads + s.Writes
			}
			b.ReportMetric(float64(ios)/float64(b.N), "io/op")
		})
	}
}

// --- Figure 8a: dictionary database, hash vs ndbm vs hsearch ----------

func BenchmarkFig8aCreate(b *testing.B) {
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fig5Iter(b, 1024, 32)
		}
	})
	b.Run("ndbm", func(b *testing.B) {
		var ios int64
		for i := 0; i < b.N; i++ {
			store := pagefile.NewMem(ndbm.DefaultPageSize, pagefile.CostModel{})
			db, err := ndbm.Open("", &ndbm.Options{Store: store})
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range benchDict {
				if err := db.Store(p.Key, p.Data, true); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Close(); err != nil {
				b.Fatal(err)
			}
			s := store.Stats().Snapshot()
			ios += s.Reads + s.Writes
		}
		b.ReportMetric(float64(ios)/float64(b.N), "io/op")
	})
}

func BenchmarkFig8aRead(b *testing.B) {
	// Build each database once; measure lookups.
	ht, err := core.Open("", &core.Options{Bsize: 1024, Ffactor: 32, CacheSize: 1 << 20, Nelem: benchN})
	if err != nil {
		b.Fatal(err)
	}
	defer ht.Close()
	nd, err := ndbm.Open("", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer nd.Close()
	for _, p := range benchDict {
		if err := ht.Put(p.Key, p.Data); err != nil {
			b.Fatal(err)
		}
		if err := nd.Store(p.Key, p.Data, true); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := benchDict[i%len(benchDict)]
			if _, err := ht.Get(p.Key); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ndbm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := benchDict[i%len(benchDict)]
			if _, err := nd.Fetch(p.Key); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig8aSequential(b *testing.B) {
	ht, err := core.Open("", &core.Options{Bsize: 1024, Ffactor: 32, CacheSize: 1 << 20, Nelem: benchN})
	if err != nil {
		b.Fatal(err)
	}
	defer ht.Close()
	nd, err := ndbm.Open("", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer nd.Close()
	for _, p := range benchDict {
		if err := ht.Put(p.Key, p.Data); err != nil {
			b.Fatal(err)
		}
		if err := nd.Store(p.Key, p.Data, true); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("hash", func(b *testing.B) { // key AND data in one pass
		for i := 0; i < b.N; i++ {
			n := 0
			it := ht.Iter()
			for it.Next() {
				n++
			}
			if it.Err() != nil || n != benchN {
				b.Fatalf("scan: n=%d err=%v", n, it.Err())
			}
		}
	})
	b.Run("ndbm-keys", func(b *testing.B) { // keys only
		for i := 0; i < b.N; i++ {
			n := 0
			c := nd.First()
			for {
				k, err := c.Next()
				if err != nil {
					b.Fatal(err)
				}
				if k == nil {
					break
				}
				n++
			}
			if n != benchN {
				b.Fatalf("scan saw %d", n)
			}
		}
	})
	b.Run("ndbm-with-data", func(b *testing.B) { // second call per key
		for i := 0; i < b.N; i++ {
			c := nd.First()
			for {
				k, err := c.Next()
				if err != nil {
					b.Fatal(err)
				}
				if k == nil {
					break
				}
				if _, err := nd.Fetch(k); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkFig8aMemory(b *testing.B) {
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t, err := core.Open("", &core.Options{Bsize: 256, Ffactor: 8, CacheSize: 64 << 10, Nelem: benchN})
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range benchDict {
				if err := t.Put(p.Key, p.Data); err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range benchDict {
				if _, err := t.Get(p.Key); err != nil {
					b.Fatal(err)
				}
			}
			t.Close()
		}
	})
	b.Run("hsearch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbl := hsearch.New(benchN, nil)
			for _, p := range benchDict {
				if err := tbl.Enter(string(p.Key), p.Data); err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range benchDict {
				if _, ok := tbl.Find(string(p.Key)); !ok {
					b.Fatal("lost key")
				}
			}
		}
	})
	b.Run("dynahash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbl := dynahash.New(benchN, 0)
			for _, p := range benchDict {
				tbl.Enter(string(p.Key), p.Data)
			}
			for _, p := range benchDict {
				if _, ok := tbl.Find(string(p.Key)); !ok {
					b.Fatal("lost key")
				}
			}
		}
	})
}

// --- Figure 8b: password database -------------------------------------

func BenchmarkFig8bPasswd(b *testing.B) {
	pairs := dataset.PasswdPairs(dataset.Passwd(0))
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t, err := core.Open("", &core.Options{Bsize: 1024, Ffactor: 32, Nelem: len(pairs)})
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pairs {
				if err := t.Put(p.Key, p.Data); err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range pairs {
				if _, err := t.Get(p.Key); err != nil {
					b.Fatal(err)
				}
			}
			t.Close()
		}
	})
	b.Run("ndbm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, err := ndbm.Open("", nil)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pairs {
				if err := db.Store(p.Key, p.Data, true); err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range pairs {
				if _, err := db.Fetch(p.Key); err != nil {
					b.Fatal(err)
				}
			}
			db.Close()
		}
	})
}

// --- Ablations ---------------------------------------------------------

func BenchmarkAblationSplitPolicy(b *testing.B) {
	for _, mode := range []struct {
		name string
		ctl  bool
	}{{"hybrid", false}, {"controlled-only", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := core.Open("", &core.Options{
					Bsize: 256, Ffactor: 8, CacheSize: 1 << 20, ControlledOnly: mode.ctl,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range benchDict {
					if err := t.Put(p.Key, p.Data); err != nil {
						b.Fatal(err)
					}
				}
				for _, p := range benchDict {
					if _, err := t.Get(p.Key); err != nil {
						b.Fatal(err)
					}
				}
				t.Close()
			}
		})
	}
}

func BenchmarkAblationHashFuncs(b *testing.B) {
	for _, name := range []string{"default", "sdbm", "dbm", "knuth", "fnv1a"} {
		fn := hashfunc.ByName[name]
		b.Run(name, func(b *testing.B) {
			var sink uint32
			for i := 0; i < b.N; i++ {
				sink += fn(benchDict[i%len(benchDict)].Key)
			}
			_ = sink
		})
	}
}

// --- Micro-benchmarks of the primitives --------------------------------

func BenchmarkPut(b *testing.B) {
	t, err := core.Open("", &core.Options{CacheSize: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := benchDict[i%len(benchDict)]
		if err := t.Put(p.Key, p.Data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	t, err := core.Open("", &core.Options{CacheSize: 8 << 20, Nelem: benchN})
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	for _, p := range benchDict {
		if err := t.Put(p.Key, p.Data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchDict[i%len(benchDict)]
		if _, err := t.Get(p.Key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetBuf is BenchmarkGet with a caller-supplied buffer; the
// allocs/op delta against BenchmarkGet is the point (0 vs 1 per call).
func BenchmarkGetBuf(b *testing.B) {
	t, err := core.Open("", &core.Options{CacheSize: 8 << 20, Nelem: benchN})
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	for _, p := range benchDict {
		if err := t.Put(p.Key, p.Data); err != nil {
			b.Fatal(err)
		}
	}
	dst := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchDict[i%len(benchDict)]
		if dst, err = t.GetBuf(p.Key, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetParallel measures read scaling over a warm table: every
// goroutine takes the shared table lock and its bucket's pool shard
// only. On a multi-core machine throughput should grow with
// GOMAXPROCS; -cpu=1,2,4,8 sweeps the curve.
func BenchmarkGetParallel(b *testing.B) {
	t, err := core.Open("", &core.Options{CacheSize: 8 << 20, Nelem: benchN})
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	for _, p := range benchDict {
		if err := t.Put(p.Key, p.Data); err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range benchDict { // warm the pool
		if _, err := t.Get(p.Key); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]byte, 0, 256)
		i := 0
		for pb.Next() {
			p := benchDict[i%len(benchDict)]
			i++
			var err error
			if dst, err = t.GetBuf(p.Key, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGetParallelMixed is the 95% read / 5% write workload: reads
// share the lock while one in twenty operations takes it exclusively to
// rewrite an existing pair.
func BenchmarkGetParallelMixed(b *testing.B) {
	t, err := core.Open("", &core.Options{CacheSize: 8 << 20, Nelem: benchN})
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	for _, p := range benchDict {
		if err := t.Put(p.Key, p.Data); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]byte, 0, 256)
		i := 0
		for pb.Next() {
			p := benchDict[i%len(benchDict)]
			i++
			var err error
			if i%20 == 0 {
				err = t.Put(p.Key, p.Data)
			} else {
				dst, err = t.GetBuf(p.Key, dst)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBigPut(b *testing.B) {
	t, err := core.Open("", &core.Options{CacheSize: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	blob := make([]byte, 64<<10)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("big%d", i%64))
		if err := t.Put(key, blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIterate(b *testing.B) {
	t, err := core.Open("", &core.Options{CacheSize: 8 << 20, Nelem: benchN})
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	for _, p := range benchDict {
		if err := t.Put(p.Key, p.Data); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		it := t.Iter()
		for it.Next() {
			n++
		}
		if n != benchN {
			b.Fatalf("scan saw %d", n)
		}
	}
}

// --- Baseline micro-benchmarks (sdbm, gdbm round out the family) -------

func BenchmarkBaselines(b *testing.B) {
	pairs := benchDict[:2000]
	b.Run("sdbm-create-read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, err := sdbm.Open("", nil)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pairs {
				if err := db.Store(p.Key, p.Data, true); err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range pairs {
				if _, err := db.Fetch(p.Key); err != nil {
					b.Fatal(err)
				}
			}
			db.Close()
		}
	})
	b.Run("gdbm-create-read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, err := gdbm.Open("", nil)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pairs {
				if err := db.Store(p.Key, p.Data, true); err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range pairs {
				if _, err := db.Fetch(p.Key); err != nil {
					b.Fatal(err)
				}
			}
			db.Close()
		}
	})
}

// --- The btree and recno access methods --------------------------------

func BenchmarkBtreePut(b *testing.B) {
	tr, err := btree.Open("", &btree.Options{CacheSize: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := benchDict[i%len(benchDict)]
		if err := tr.Put(p.Key, p.Data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBtreeGet(b *testing.B) {
	tr, err := btree.Open("", &btree.Options{CacheSize: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	for _, p := range benchDict {
		if err := tr.Put(p.Key, p.Data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchDict[i%len(benchDict)]
		if _, err := tr.Get(p.Key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBtreeOrderedScan(b *testing.B) {
	tr, err := btree.Open("", &btree.Options{CacheSize: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	for _, p := range benchDict {
		if err := tr.Put(p.Key, p.Data); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := tr.Cursor()
		n := 0
		for c.Next() {
			n++
		}
		if c.Err() != nil || n != benchN {
			b.Fatalf("scan: %d, %v", n, c.Err())
		}
	}
}

func BenchmarkMethodsViaDB(b *testing.B) {
	// The uniform interface's overhead over each engine.
	for _, m := range []db.Method{db.Hash, db.Btree} {
		b.Run(m.String(), func(b *testing.B) {
			d, err := db.Open("", m, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			for _, p := range benchDict[:1000] {
				if err := d.Put(p.Key, p.Data); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := benchDict[i%1000]
				if _, err := d.Get(p.Key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Guard: the figure harness itself stays runnable from `go test`.
func BenchmarkHarnessFig8aQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8Dict(1000); err != nil {
			b.Fatal(err)
		}
	}
}

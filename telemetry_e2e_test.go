package unixhash

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestTelemetryEndToEnd is the CI smoke for the live observation
// surface: it builds hashbench and dbcli, starts `hashbench serve`
// (a traced workload with the telemetry server up), scrapes every
// endpoint — including a one-second CPU profile — and watches the
// workload through `dbcli hashmon`. Any non-200 status or empty body
// fails.
func TestTelemetryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := t.TempDir()
	for _, tool := range []string{"hashbench", "dbcli"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}

	// Start the serving workload and read the listen address from its
	// first output line ("telemetry http://HOST:PORT").
	serve := exec.Command(filepath.Join(bin, "hashbench"), "-n", "2000", "-dur", "30s", "serve")
	stdout, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		serve.Process.Kill()
		serve.Wait()
	}()
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("hashbench serve produced no output: %v", sc.Err())
	}
	first := sc.Text()
	base, ok := strings.CutPrefix(first, "telemetry ")
	if !ok {
		t.Fatalf("unexpected first line %q", first)
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	client := &http.Client{Timeout: 30 * time.Second}
	get := func(path string) []byte {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d: %s", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
		return body
	}

	if body := string(get("/metrics")); !strings.Contains(body, "# TYPE hash_gets_total counter") {
		t.Fatalf("/metrics missing hash counters:\n%.500s", body)
	}
	var stats struct {
		Method string `json:"method"`
	}
	if err := json.Unmarshal(get("/stats"), &stats); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if stats.Method != "hash" {
		t.Fatalf("/stats method = %q", stats.Method)
	}
	var events struct {
		Count int `json:"count"`
	}
	// On a loaded single-CPU host the workload goroutine may not have
	// been scheduled between the server coming up and this scrape, so
	// poll briefly before declaring the ring dead.
	for deadline := time.Now().Add(5 * time.Second); ; time.Sleep(50 * time.Millisecond) {
		if err := json.Unmarshal(get("/debug/events"), &events); err != nil {
			t.Fatalf("/debug/events not JSON: %v", err)
		}
		if events.Count > 0 || time.Now().After(deadline) {
			break
		}
	}
	if events.Count == 0 {
		t.Fatal("/debug/events empty under live load")
	}
	get("/debug/events?type=split-begin")
	var hm struct {
		Buckets uint32 `json:"buckets"`
	}
	if err := json.Unmarshal(get("/debug/heatmap"), &hm); err != nil {
		t.Fatalf("/debug/heatmap not JSON: %v", err)
	}
	if hm.Buckets == 0 {
		t.Fatal("/debug/heatmap reports zero buckets")
	}
	get("/debug/slowops")
	get("/debug/pprof/profile?seconds=1")

	// hashmon: two quick polls must see the workload moving.
	addr := strings.TrimPrefix(base, "http://")
	out, err := exec.Command(filepath.Join(bin, "dbcli"), "hashmon", addr, "300ms", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("dbcli hashmon: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "changed)") || !strings.Contains(string(out), "hash_gets_total") {
		t.Fatalf("hashmon saw no movement:\n%s", out)
	}
	fmt.Println("telemetry smoke ok:", base)
}

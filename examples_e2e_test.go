package unixhash

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end; the
// examples are living documentation and must keep working.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go run per example; skipped in -short mode")
	}
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
		want []string // substrings the output must contain
	}{
		{
			name: "quickstart",
			args: []string{filepath.Join(dir, "qs.db")},
			want: []string{"cherry  -> prunus avium", "reopened"},
		},
		{
			name: "passwd",
			args: []string{filepath.Join(dir, "pw.db")},
			want: []string{"built", "0 page reads from disk"},
		},
		{
			name: "spellcheck",
			want: []string{"dictionary loaded: 24474 words", "MISSPELT"},
		},
		{
			name: "multitable",
			args: []string{filepath.Join(dir, "mt")},
			want: []string{"shared table holds 2000 pairs", "different hash function", "4162 overflow pages"},
		},
		{
			name: "dbaccess",
			args: []string{filepath.Join(dir, "da")},
			want: []string{"[hash] lookup margo", "[btree] lookup margo", "recno-only"},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", "./examples/" + c.name}, c.args...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.name, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("example %s output missing %q:\n%s", c.name, want, out)
				}
			}
		})
	}
}
